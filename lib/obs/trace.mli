(** Ring-buffered structured event tracing for the engine.

    Every interesting control transfer in the two-tier engine — tier-ups,
    compiles, deopts (with a human-readable reason), Class Cache
    misspeculation exceptions, inline-cache transitions, on-stack
    replacements, heap growth, phase markers — can be recorded here as a
    typed event stamped with the machine's deterministic cycle clock.

    The disabled path is zero-cost: {!null} (and any trace created with
    [enabled:false]) never records, and instrumentation sites guard event
    construction behind {!on} so nothing is allocated when tracing is off.
    Tracing never touches counters or the simulated clock, so cycle counts
    are bit-identical with tracing on or off. *)

type event =
  | Tierup of { func : string; fn_id : int; opt_id : int }
      (** a hot function was promoted to the optimizing tier *)
  | Compile of {
      func : string;
      opt_id : int;
      instrs : int;  (** LIR instructions emitted (0 on bailout) *)
      bailout : string option;  (** [Some msg]: compilation gave up *)
    }
  | Deopt of {
      reason : string;  (** which check kind / SpeculateMap bit failed *)
      func : string;
      pc : int;  (** bytecode pc the interpreter resumes at *)
      classid : int;  (** hidden class involved, [-1] when not applicable *)
    }
  | Cc_exception of {
      classid : int;
      line : int;
      pos : int;
      victims : int;  (** functions invalidated by the exception *)
    }
  | Ic_transition of {
      site : string;  (** "prop-load", "elem-store", "binop", ... *)
      slot : int;  (** feedback-vector slot *)
      from_state : string;
      to_state : string;
    }
  | Osr of { func : string; pc : int }
      (** on-stack replacement: a live optimized frame was abandoned *)
  | Gc of { heap_bytes : int; grows : int }
      (** heap growth (elements backing-store reallocation) *)
  | Phase of string  (** phase marker: "setup", "warmup", "measure", ... *)
  | Fault_injected of {
      point : string;  (** fault-point name, e.g. "lost-deopt" (Tce_fault) *)
      classid : int;  (** hidden class at the injection site, [-1] if n/a *)
      line : int;
      pos : int;
    }  (** a seeded fault fired at a Class Cache / Class List / OSR surface *)
  | Fault_detected of {
      func : string;
      opt_id : int;
      cause : string;  (** which retire-path invariant tripped *)
    }
      (** the engine caught an injected inconsistency and fell back to
          fully-checked execution for [func] *)
  | Backoff of {
      func : string;
      level : int;  (** exponential backoff level after this deopt *)
      until : int;  (** simulated cycle when re-speculation is allowed again *)
    }  (** deopt-storm mitigation: re-speculation of [func] was delayed *)

type record = { at : int;  (** deterministic cycle stamp *) ev : event }

type t

(** The shared disabled trace: never records, never allocates. *)
val null : t

(** A fresh enabled trace. [capacity] is the ring size in events (default
    65536); once full, the oldest events are overwritten. *)
val create : ?capacity:int -> unit -> t

(** Is this trace recording? Instrumentation sites must guard event
    construction with this so the disabled path allocates nothing. *)
val on : t -> bool

(** Install the deterministic clock used to stamp events (the engine wires
    this to the machine's cycle count; defaults to a constant 0). *)
val set_clock : t -> (unit -> int) -> unit

(** Current clock reading (0 for {!null} / unclocked traces). *)
val now : t -> int

val emit : t -> event -> unit

(** Events emitted since creation (including overwritten ones). *)
val total : t -> int

(** Events lost to ring wraparound. *)
val dropped : t -> int

(** Surviving events, oldest first. *)
val records : t -> record list

val clear : t -> unit

(** Short event-kind tag ("tierup", "deopt", ...), used by sinks. *)
val kind : event -> string
