(** A minimal JSON representation, emitter and parser (see json.mli). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- emission --- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" x)
  else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let rec emit ~indent ~level buf j =
  let nl lvl =
    if indent then begin
      Buffer.add_char buf '\n';
      for _ = 1 to 2 * lvl do
        Buffer.add_char buf ' '
      done
    end
  in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> float_to buf x
  | Str s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        emit ~indent ~level:(level + 1) buf x)
      xs;
    nl level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        escape_to buf k;
        Buffer.add_char buf ':';
        if indent then Buffer.add_char buf ' ';
        emit ~indent ~level:(level + 1) buf v)
      kvs;
    nl level;
    Buffer.add_char buf '}'

let to_buffer buf j = emit ~indent:false ~level:0 buf j

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let to_string_pretty j =
  let buf = Buffer.create 256 in
  emit ~indent:true ~level:0 buf j;
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (* keep it simple: BMP code points as UTF-8 *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
          end
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail ("bad number: " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        let rec go () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items := parse_value () :: !items;
            go ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        go ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        let rec go () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields := field () :: !fields;
            go ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        go ();
        Obj (List.rev !fields)
      end
    | Some c -> (
      match c with
      | '0' .. '9' | '-' -> parse_number ()
      | _ -> fail (Printf.sprintf "unexpected character '%c'" c))
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* --- accessors --- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
