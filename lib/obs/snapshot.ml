(** Periodic counter sampling (see snapshot.mli). *)

type sample = {
  at : int;
  deopts : int;
  tierups : int;
  cc_exceptions : int;
  cc_occupancy : int;
  cc_set_occupancy : int array;
  cc_conflicts : int;
  baseline_instrs : int;
  heap_bytes : int;
  prof_costs : (string * int) array;
}

type t = {
  every : int;
  mutable next_at : int;
  mutable acc : sample list;  (** newest first *)
}

let disabled = { every = 0; next_at = max_int; acc = [] }

let create ~every =
  if every <= 0 then disabled else { every; next_at = 0; acc = [] }

let active t = t.every > 0

let tick t ~now f =
  if t.every > 0 && now >= t.next_at then begin
    t.next_at <- now + t.every;
    t.acc <- f () :: t.acc
  end

let samples t = List.rev t.acc
