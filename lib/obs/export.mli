(** Versioned JSON export envelope.

    Everything the repo writes as machine-readable output — metrics files,
    Class List dumps, probe results — goes through {!document}, so every
    artifact self-identifies with [schema_version] + [kind] and downstream
    tooling (dashboards, regression gates) can evolve against a stable
    contract. Bump {!schema_version} on any breaking field change. *)

val schema_version : int

(** [document ~kind data] = [{"schema_version": ...; "kind": kind;
    "generator": "tce"; "data": data}]. *)
val document : kind:string -> Json.t -> Json.t

(** Is [j] a well-formed envelope of this (or an older) schema version?
    Returns the [kind] and payload. *)
val open_document : Json.t -> (string * Json.t, string) result

(** Like {!open_document} but also returns the document's schema version,
    for readers that apply version-dependent defaults (e.g. the bench-run
    decoder backfills v3 wall-clock fields on v1/v2 documents). *)
val open_document_v : Json.t -> (int * string * Json.t, string) result

val to_channel : out_channel -> Json.t -> unit

(** Write pretty-printed JSON (trailing newline included). [path] "-"
    writes to stdout. File writes are crash-safe: the document is staged in
    a temp file in the destination directory and atomically renamed into
    place, so readers never observe a truncated JSON document. *)
val to_file : path:string -> Json.t -> unit
