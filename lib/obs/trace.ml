(** Ring-buffered structured event tracing (see trace.mli). *)

type event =
  | Tierup of { func : string; fn_id : int; opt_id : int }
  | Compile of {
      func : string;
      opt_id : int;
      instrs : int;
      bailout : string option;
    }
  | Deopt of { reason : string; func : string; pc : int; classid : int }
  | Cc_exception of { classid : int; line : int; pos : int; victims : int }
  | Ic_transition of {
      site : string;
      slot : int;
      from_state : string;
      to_state : string;
    }
  | Osr of { func : string; pc : int }
  | Gc of { heap_bytes : int; grows : int }
  | Phase of string
  | Fault_injected of { point : string; classid : int; line : int; pos : int }
  | Fault_detected of { func : string; opt_id : int; cause : string }
  | Backoff of { func : string; level : int; until : int }

type record = { at : int; ev : event }

type t = {
  enabled : bool;
  buf : record array;  (** ring storage; length 0 for {!null} *)
  mutable total : int;
  mutable clock : unit -> int;
}

let zero_clock () = 0
let dummy = { at = 0; ev = Phase "" }
let null = { enabled = false; buf = [||]; total = 0; clock = zero_clock }

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { enabled = true; buf = Array.make capacity dummy; total = 0; clock = zero_clock }

let on t = t.enabled
let set_clock t f = t.clock <- f
let now t = t.clock ()

let emit t ev =
  if t.enabled then begin
    let cap = Array.length t.buf in
    t.buf.(t.total mod cap) <- { at = t.clock (); ev };
    t.total <- t.total + 1
  end

let total t = t.total

let dropped t =
  let cap = Array.length t.buf in
  if cap = 0 then 0 else max 0 (t.total - cap)

let records t =
  let cap = Array.length t.buf in
  if cap = 0 || t.total = 0 then []
  else begin
    let stored = min t.total cap in
    let first = t.total - stored in
    List.init stored (fun i -> t.buf.((first + i) mod cap))
  end

let clear t = t.total <- 0

let kind = function
  | Tierup _ -> "tierup"
  | Compile _ -> "compile"
  | Deopt _ -> "deopt"
  | Cc_exception _ -> "cc-exception"
  | Ic_transition _ -> "ic-transition"
  | Osr _ -> "osr"
  | Gc _ -> "gc"
  | Phase _ -> "phase"
  | Fault_injected _ -> "fault-injected"
  | Fault_detected _ -> "fault-detected"
  | Backoff _ -> "backoff"
