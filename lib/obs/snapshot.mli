(** Periodic counter sampling into a deterministic time series.

    The engine calls {!tick} at cheap, well-defined points (guest calls,
    store events) with the machine's cycle clock; a sample is taken when at
    least [every] cycles elapsed since the previous one. Because the clock
    is the simulated cycle count — never wall time — the series is
    bit-reproducible across runs. Samples feed the Chrome-trace counter
    tracks (deopts, Class Cache occupancy, heap bytes). *)

type sample = {
  at : int;  (** cycle stamp *)
  deopts : int;
  tierups : int;
  cc_exceptions : int;
  cc_occupancy : int;  (** valid Class Cache ways *)
  cc_set_occupancy : int array;
      (** valid ways per set, bucketed to at most 8 tracks (see the engine's
          sampling site) — the Perfetto occupancy heatmap *)
  cc_conflicts : int;  (** cumulative valid-victim evictions *)
  baseline_instrs : int;
  heap_bytes : int;
  prof_costs : (string * int) array;
      (** running profiler machine-cycle totals per cost kind at the
          sample point (empty when profiling is off) — rendered as
          [prof/<cost>] counter tracks *)
}

type t

(** The shared inactive sampler: {!tick} is a no-op. *)
val disabled : t

(** Sample every [every] cycles ([every <= 0] gives an inactive sampler). *)
val create : every:int -> t

val active : t -> bool

(** [tick t ~now f] records [f ()] when due. [f] must only be evaluated on
    a due tick (the sampling sites rely on this for the zero-cost path). *)
val tick : t -> now:int -> (unit -> sample) -> unit

(** Samples taken so far, chronological. *)
val samples : t -> sample list
