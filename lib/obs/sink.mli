(** Render a {!Trace} ring (plus optional {!Snapshot} series) to consumable
    formats: JSON-lines for scripting, and Chrome [trace_event] JSON for
    timeline UIs (chrome://tracing, Perfetto). *)

(** One event as a flat JSON object ([{"at": cycles; "event": kind; ...}]). *)
val event_json : Trace.record -> Json.t

(** One JSON object per line, oldest first; ends with a newline when any
    event was recorded. *)
val jsonl : Trace.t -> string

(** Chrome trace_event document: [{"traceEvents": [...], ...}]. Tracks:
    one thread per tier (baseline / optimized / compiler) carrying instant
    events, plus counter tracks ("deopts", "cc-occupancy", "heap-bytes")
    fed by the snapshot series. Timestamps are simulated cycles rendered
    as microseconds. *)
val chrome : ?snapshot:Snapshot.t -> Trace.t -> Json.t

(** Render the trace in the given format ("json" = JSON-lines). *)
val render : format:[ `Jsonl | `Chrome ] -> ?snapshot:Snapshot.t -> Trace.t -> string

val write_file : path:string -> string -> unit
