(** Render a {!Trace} ring (plus optional {!Snapshot} series) to consumable
    formats: JSON-lines for scripting, and Chrome [trace_event] JSON for
    timeline UIs (chrome://tracing, Perfetto). *)

(** One event as a flat JSON object ([{"at": cycles; "event": kind; ...}]). *)
val event_json : Trace.record -> Json.t

(** One JSON object per line, oldest first; ends with a newline when any
    event was recorded. *)
val jsonl : Trace.t -> string

(** One counter-track sample (["ph": "C"]) at simulated cycle [at].
    Counter tracks are named through the telemetry registry catalog
    ([Tce_telem.Track]) so the trace and scrape namespaces agree. *)
val counter : at:int -> string -> int -> Json.t

(** Chrome trace_event document: [{"traceEvents": [...], ...}]. Tracks:
    one thread per tier (baseline / optimized / compiler) carrying instant
    events, plus any pre-built counter samples (see {!counter}) appended
    by the caller. Timestamps are simulated cycles rendered as
    microseconds. *)
val chrome : ?counters:Json.t list -> Trace.t -> Json.t

(** Render the trace in the given format ("json" = JSON-lines). *)
val render : format:[ `Jsonl | `Chrome ] -> ?counters:Json.t list -> Trace.t -> string

val write_file : path:string -> string -> unit
