(** Trace sinks: JSON-lines and Chrome trace_event (see sink.mli). *)

let args_of_event (ev : Trace.event) : (string * Json.t) list =
  match ev with
  | Trace.Tierup { func; fn_id; opt_id } ->
    [ ("func", Json.Str func); ("fn_id", Json.Int fn_id); ("opt_id", Json.Int opt_id) ]
  | Compile { func; opt_id; instrs; bailout } ->
    [
      ("func", Json.Str func);
      ("opt_id", Json.Int opt_id);
      ("instrs", Json.Int instrs);
      ("bailout", match bailout with Some m -> Json.Str m | None -> Json.Null);
    ]
  | Deopt { reason; func; pc; classid } ->
    [
      ("reason", Json.Str reason);
      ("func", Json.Str func);
      ("pc", Json.Int pc);
      ("classid", Json.Int classid);
    ]
  | Cc_exception { classid; line; pos; victims } ->
    [
      ("classid", Json.Int classid);
      ("line", Json.Int line);
      ("pos", Json.Int pos);
      ("victims", Json.Int victims);
    ]
  | Ic_transition { site; slot; from_state; to_state } ->
    [
      ("site", Json.Str site);
      ("slot", Json.Int slot);
      ("from", Json.Str from_state);
      ("to", Json.Str to_state);
    ]
  | Osr { func; pc } -> [ ("func", Json.Str func); ("pc", Json.Int pc) ]
  | Gc { heap_bytes; grows } ->
    [ ("heap_bytes", Json.Int heap_bytes); ("grows", Json.Int grows) ]
  | Phase name -> [ ("name", Json.Str name) ]
  | Fault_injected { point; classid; line; pos } ->
    [
      ("point", Json.Str point);
      ("classid", Json.Int classid);
      ("line", Json.Int line);
      ("pos", Json.Int pos);
    ]
  | Fault_detected { func; opt_id; cause } ->
    [
      ("func", Json.Str func);
      ("opt_id", Json.Int opt_id);
      ("cause", Json.Str cause);
    ]
  | Backoff { func; level; until } ->
    [
      ("func", Json.Str func);
      ("level", Json.Int level);
      ("until", Json.Int until);
    ]

let event_json (r : Trace.record) =
  Json.Obj
    (("at", Json.Int r.Trace.at)
    :: ("event", Json.Str (Trace.kind r.Trace.ev))
    :: args_of_event r.Trace.ev)

let jsonl tr =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Json.to_buffer buf (event_json r);
      Buffer.add_char buf '\n')
    (Trace.records tr);
  Buffer.contents buf

(* --- Chrome trace_event --- *)

let pid = 1
let tid_baseline = 1
let tid_optimized = 2
let tid_compiler = 3

let tid_of_event (ev : Trace.event) =
  match ev with
  | Trace.Tierup _ | Compile _ -> tid_compiler
  | Deopt _ | Osr _ | Cc_exception _ | Fault_detected _ | Backoff _ ->
    tid_optimized
  | Ic_transition _ | Gc _ | Phase _ | Fault_injected _ -> tid_baseline

let name_of_event (ev : Trace.event) =
  match ev with
  | Trace.Tierup { func; _ } -> "tierup " ^ func
  | Compile { func; bailout = None; _ } -> "compile " ^ func
  | Compile { func; bailout = Some _; _ } -> "bailout " ^ func
  | Deopt { reason; func; _ } -> Printf.sprintf "deopt %s: %s" func reason
  | Cc_exception _ -> "cc-exception"
  | Ic_transition { site; to_state; _ } ->
    Printf.sprintf "ic %s -> %s" site to_state
  | Osr { func; _ } -> "osr " ^ func
  | Gc _ -> "heap-grow"
  | Phase name -> "phase " ^ name
  | Fault_injected { point; _ } -> "fault " ^ point
  | Fault_detected { func; cause; _ } ->
    Printf.sprintf "fault-detected %s: %s" func cause
  | Backoff { func; level; _ } -> Printf.sprintf "backoff %s (level %d)" func level

let thread_meta ~tid name =
  Json.Obj
    [
      ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

let instant (r : Trace.record) =
  Json.Obj
    [
      ("name", Json.Str (name_of_event r.Trace.ev));
      ("cat", Json.Str (Trace.kind r.Trace.ev));
      ("ph", Json.Str "i");
      ("s", Json.Str "t");
      ("ts", Json.Int r.Trace.at);
      ("pid", Json.Int pid);
      ("tid", Json.Int (tid_of_event r.Trace.ev));
      ("args", Json.Obj (args_of_event r.Trace.ev));
    ]

let counter ~at name value =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "C");
      ("ts", Json.Int at);
      ("pid", Json.Int pid);
      ("args", Json.Obj [ (name, Json.Int value) ]);
    ]

let chrome ?(counters = []) tr =
  let meta =
    [
      thread_meta ~tid:tid_baseline "tier-0 baseline interpreter";
      thread_meta ~tid:tid_optimized "tier-1 optimized code";
      thread_meta ~tid:tid_compiler "crankshaft compiler";
    ]
  in
  let events = List.map instant (Trace.records tr) in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ events @ counters));
      ("displayTimeUnit", Json.Str "ns");
      ( "otherData",
        Json.Obj
          [
            ("generator", Json.Str "tce");
            ("events_total", Json.Int (Trace.total tr));
            ("events_dropped", Json.Int (Trace.dropped tr));
          ] );
    ]

let render ~format ?counters tr =
  match format with
  | `Jsonl -> jsonl tr
  | `Chrome -> Json.to_string (chrome ?counters tr) ^ "\n"

let write_file ~path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)
