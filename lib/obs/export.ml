(** Versioned JSON export envelope (see export.mli). *)

(* v2: records carry a per-kind check-removal composition block
   ([checks_by_kind]) and the [attr-report] document kind exists.
   v3: bench-run workloads carry per-side host wall clocks
   ([wall_seconds_off]/[wall_seconds_on], provenance-only).
   v4: the [prof-report] (roster-wide cycle-attribution profiles) and
   [time-report] (machine-readable --time wall table) document kinds
   exist; Chrome traces gain [prof/<cost>] counter tracks.
   v5: the [telem] worker heartbeat envelope kind exists (single-line
   progress beats interleaved with bench-row/fault-cell streams).
   Older documents remain readable ([open_document] accepts 1..version);
   readers that need version-dependent defaults use [open_document_v]. *)
let schema_version = 5

let document ~kind data =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("kind", Json.Str kind);
      ("generator", Json.Str "tce");
      ("data", data);
    ]

let open_document_v j =
  match (Json.member "schema_version" j, Json.member "kind" j, Json.member "data" j) with
  | Some (Json.Int v), Some (Json.Str kind), Some data ->
    if v >= 1 && v <= schema_version then Ok (v, kind, data)
    else
      Error
        (Printf.sprintf
           "unsupported schema_version %d (this build supports 1..%d)" v
           schema_version)
  | _ -> Error "missing schema_version/kind/data envelope fields"

let open_document j =
  Result.map (fun (_, kind, data) -> (kind, data)) (open_document_v j)

let to_channel oc j =
  output_string oc (Json.to_string_pretty j);
  output_char oc '\n'

(* Crash-safe write: emit into a temp file in the destination directory,
   then atomically rename over [path]. An interrupted or faulted run can
   truncate the temp file, never the published document. *)
let to_file ~path j =
  if path = "-" then to_channel stdout j
  else begin
    let dir = Filename.dirname path in
    let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path ^ ".") ".tmp" in
    (try
       let oc = open_out tmp in
       Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc j)
     with e ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp path
  end
