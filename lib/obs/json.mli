(** A minimal JSON representation, emitter and parser.

    The observability layer must not pull heavyweight dependencies into the
    low layers of the engine, so this is a deliberately small, total JSON
    implementation: enough to render traces/metrics and to parse them back
    in tests and validators. Integers are kept distinct from floats so
    cycle counts round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact rendering (no insignificant whitespace). NaN/infinite floats
    are rendered as [null] (JSON has no representation for them). *)
val to_string : t -> string

(** Rendering with newlines and two-space indentation (for files meant to
    be read by humans). *)
val to_string_pretty : t -> string

val to_buffer : Buffer.t -> t -> unit

(** Strict recursive-descent parser. Returns [Error msg] (with a byte
    offset in the message) instead of raising. *)
val of_string : string -> (t, string) result

(** [member k j] is the value of field [k] when [j] is an object. *)
val member : string -> t -> t option

val to_list : t -> t list option
val to_int : t -> int option
val to_float : t -> float option
val to_str : t -> string option
