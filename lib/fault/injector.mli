(** The deterministic, seeded fault injector.

    One injector is threaded through an engine instance (Class Cache,
    machine and engine consult it at their fault points). All decisions come
    from a splitmix64 PRNG seeded at creation, so a campaign is replayable
    from [(seed, spec)]; every fired fault is recorded as a
    [Tce_obs.Trace.Fault_injected] event when tracing is on.

    The disabled path mirrors [Tce_obs.Trace.null]: call sites guard their
    hooks with {!armed}, so an engine running with {!null} injects nothing,
    allocates nothing, and its simulated cycle counts are bit-identical to a
    build without the fault layer (asserted by test/test_fault.ml). *)

type t

(** The shared disarmed injector: {!armed} is false, {!fire} never fires. *)
val null : t

(** A fresh injector. [trace] (default [Trace.null]) receives
    [Fault_injected] events; the engine re-installs its own trace via
    {!set_trace}. *)
val create : ?trace:Tce_obs.Trace.t -> seed:int -> Spec.t -> t

(** Are any fault points armed? Call sites must guard hooks with this so
    the unfaulted path stays zero-cost. *)
val armed : t -> bool

val seed : t -> int
val set_trace : t -> Tce_obs.Trace.t -> unit

(** [fire t point] consumes one opportunity for [point] and reports whether
    the fault fires now (always false for unarmed points). The optional
    site coordinates only annotate the emitted trace event. *)
val fire : t -> ?classid:int -> ?line:int -> ?pos:int -> Point.t -> bool

(** Delivery delay for [Cc_delayed_exn], in Class Cache accesses (the
    rule's parameter; default 8). *)
val delay : t -> int

(** Record victims whose deopt notification was dropped ([Lost_deopt]). *)
val stash_lost : t -> int list -> unit

(** All victims dropped so far (campaign accounting). *)
val lost : t -> int list

(** Park victims of a delayed exception; they are re-delivered by
    {!tick_delayed} after {!delay} further Class Cache accesses. *)
val stash_delayed : t -> int list -> unit

(** Advance the delay pipeline by one Class Cache access and return the
    victims whose delivery is now due. *)
val tick_delayed : t -> int list

val pending_delayed : t -> int
val delivered_late : t -> int

(** The engine's retire-path invariant check caught an injected
    inconsistency and fell back to checked execution. *)
val note_detected : t -> unit

val detections : t -> int

(** Fires so far, per point / total / as an assoc over armed points. *)
val fires : t -> Point.t -> int

(** Opportunities seen so far for [point] (moments it could have fired).
    With an armed-but-inert rule ([point@N] for huge [N]) this counts a
    run's opportunities, which pins the [N] for a deterministic one-shot
    replay. *)
val opportunities : t -> Point.t -> int

val total_fires : t -> int
val counts : t -> (Point.t * int) list

(** One-line human summary, e.g. for [tcejs run --fault-spec] stderr. *)
val summary : t -> string
