(** The named fault points of the injection campaign: exactly the surfaces
    the paper's verification mechanism depends on (Class Cache behaviour,
    Class List integrity, exception delivery, OSR transitions). *)

type t =
  | Cc_evict  (** forced Class Cache eviction before a lookup (timing only) *)
  | Cc_drop_update  (** a special store's profiling update is lost *)
  | Cl_flip_init  (** corrupted Class List entry: InitMap bit flipped *)
  | Cl_flip_valid  (** corrupted Class List entry: ValidMap bit flipped *)
  | Cl_flip_speculate  (** corrupted Class List entry: SpeculateMap bit flipped *)
  | Cc_spurious_exn
      (** spurious misspeculation exception on an intact slot (the victims
          deopt although the profile never broke) *)
  | Cc_delayed_exn
      (** the misspeculation exception is delivered [param] Class Cache
          accesses late instead of synchronously *)
  | Lost_deopt
      (** the FunctionList deopt notification is dropped entirely — a fault
          the paper's hardware cannot produce; must be *detected* *)
  | Osr_fail  (** an OSR transition fails once and is retried (timing only) *)

val all : t list

(** Dense index in [0, count): array-indexing key for per-point state. *)
val index : t -> int

val count : int

(** Stable CLI / report name, e.g. ["lost-deopt"]. *)
val name : t -> string

val of_name : string -> t option

(** One-line human description (campaign reports, [--faults --list]). *)
val describe : t -> string

val pp : Format.formatter -> t -> unit
