(** The seeded fault injector (see injector.mli). *)

module Trace = Tce_obs.Trace

type rule_state = {
  rule : Spec.rule;
  mutable opportunities : int;
  mutable fires : int;
}

type t = {
  armed : bool;
  seed : int;
  prng : Tce_support.Prng.t;
  rules : rule_state option array;  (** indexed by {!Point.index} *)
  mutable trace : Trace.t;
  mutable delayed : (int * int list) list;
      (** pending delayed exceptions: (accesses until delivery, victims) *)
  mutable lost : int list;  (** victims whose notification was dropped *)
  mutable delivered_late : int;
  mutable detections : int;
}

let null =
  {
    armed = false;
    seed = 0;
    prng = Tce_support.Prng.create 0;
    rules = Array.make Point.count None;
    trace = Trace.null;
    delayed = [];
    lost = [];
    delivered_late = 0;
    detections = 0;
  }

let create ?(trace = Trace.null) ~seed spec =
  let rules = Array.make Point.count None in
  List.iter
    (fun (r : Spec.rule) ->
      rules.(Point.index r.Spec.point) <-
        Some { rule = r; opportunities = 0; fires = 0 })
    spec;
  {
    armed = spec <> [];
    seed;
    prng = Tce_support.Prng.create seed;
    rules;
    trace;
    delayed = [];
    lost = [];
    delivered_late = 0;
    detections = 0;
  }

let armed t = t.armed
let seed t = t.seed
let set_trace t tr = t.trace <- tr

let fire t ?(classid = -1) ?(line = -1) ?(pos = -1) point =
  match t.rules.(Point.index point) with
  | None -> false
  | Some rs ->
    rs.opportunities <- rs.opportunities + 1;
    let hit =
      match rs.rule.Spec.trigger with
      | Spec.Prob p -> Tce_support.Prng.chance t.prng p
      | Spec.At n -> rs.opportunities = n
    in
    if hit then begin
      rs.fires <- rs.fires + 1;
      if Trace.on t.trace then
        Trace.emit t.trace
          (Trace.Fault_injected { point = Point.name point; classid; line; pos })
    end;
    hit

let default_delay = 8

let delay t =
  match t.rules.(Point.index Point.Cc_delayed_exn) with
  | Some { rule = { Spec.param = Some q; _ }; _ } -> q
  | _ -> default_delay

let stash_lost t fns = t.lost <- fns @ t.lost
let lost t = t.lost

let stash_delayed t fns = t.delayed <- (delay t, fns) :: t.delayed

let tick_delayed t =
  if t.delayed = [] then []
  else begin
    let due, pending =
      List.partition_map
        (fun (n, fns) ->
          if n <= 1 then Either.Left fns else Either.Right (n - 1, fns))
        t.delayed
    in
    t.delayed <- pending;
    let fns = List.concat due in
    t.delivered_late <- t.delivered_late + List.length fns;
    fns
  end

let pending_delayed t = List.length t.delayed
let delivered_late t = t.delivered_late
let note_detected t = t.detections <- t.detections + 1
let detections t = t.detections

let fires t point =
  match t.rules.(Point.index point) with None -> 0 | Some rs -> rs.fires

let opportunities t point =
  match t.rules.(Point.index point) with
  | None -> 0
  | Some rs -> rs.opportunities

let total_fires t =
  Array.fold_left
    (fun acc -> function None -> acc | Some rs -> acc + rs.fires)
    0 t.rules

let counts t =
  List.filter_map
    (fun p ->
      match t.rules.(Point.index p) with
      | None -> None
      | Some rs -> Some (p, rs.fires))
    Point.all

let summary t =
  let parts =
    List.filter_map
      (fun (p, n) ->
        if n = 0 then None else Some (Printf.sprintf "%s=%d" (Point.name p) n))
      (counts t)
  in
  Printf.sprintf "fires=%d [%s] detections=%d late-deliveries=%d" (total_fires t)
    (String.concat " " parts) (detections t) (delivered_late t)
