(** Named fault points (see point.mli). *)

type t =
  | Cc_evict
  | Cc_drop_update
  | Cl_flip_init
  | Cl_flip_valid
  | Cl_flip_speculate
  | Cc_spurious_exn
  | Cc_delayed_exn
  | Lost_deopt
  | Osr_fail

let all =
  [
    Cc_evict;
    Cc_drop_update;
    Cl_flip_init;
    Cl_flip_valid;
    Cl_flip_speculate;
    Cc_spurious_exn;
    Cc_delayed_exn;
    Lost_deopt;
    Osr_fail;
  ]

let index = function
  | Cc_evict -> 0
  | Cc_drop_update -> 1
  | Cl_flip_init -> 2
  | Cl_flip_valid -> 3
  | Cl_flip_speculate -> 4
  | Cc_spurious_exn -> 5
  | Cc_delayed_exn -> 6
  | Lost_deopt -> 7
  | Osr_fail -> 8

let count = List.length all

let name = function
  | Cc_evict -> "cc-evict"
  | Cc_drop_update -> "cc-drop"
  | Cl_flip_init -> "cl-flip-init"
  | Cl_flip_valid -> "cl-flip-valid"
  | Cl_flip_speculate -> "cl-flip-spec"
  | Cc_spurious_exn -> "cc-spurious"
  | Cc_delayed_exn -> "cc-delay"
  | Lost_deopt -> "lost-deopt"
  | Osr_fail -> "osr-fail"

let of_name s = List.find_opt (fun p -> name p = s) all

let describe = function
  | Cc_evict -> "force-evict the Class Cache entry before the lookup"
  | Cc_drop_update -> "drop the profiling update of one special store"
  | Cl_flip_init -> "flip the slot's InitMap bit in the Class List"
  | Cl_flip_valid -> "flip the slot's ValidMap bit in the Class List"
  | Cl_flip_speculate -> "flip the slot's SpeculateMap bit in the Class List"
  | Cc_spurious_exn -> "raise a spurious misspeculation exception"
  | Cc_delayed_exn -> "delay delivery of a misspeculation exception"
  | Lost_deopt -> "lose the FunctionList deopt notification entirely"
  | Osr_fail -> "fail the OSR transition once and retry via the slow path"

let pp ppf p = Fmt.string ppf (name p)
