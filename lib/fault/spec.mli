(** Fault-campaign specifications: which fault points are armed, with what
    trigger. The concrete syntax (accepted by [--fault-spec] on both
    [bench/main.exe -- --faults] and [tcejs run]) is a comma-separated list
    of rules:

    {v
      point            fire on every opportunity (probability 1)
      point:P          fire with probability P in [0, 1] per opportunity
      point:P:Q        same, with integer parameter Q (cc-delay: deliver the
                       exception Q Class Cache accesses late; default 8)
      point@N          fire exactly once, on the Nth opportunity (1-based)
    v}

    e.g. ["lost-deopt:0.5,cc-evict:0.02"] or ["cc-delay@3"]. An opportunity
    is one moment where the point could fire (a Class Cache access for the
    CC/CL points, a delivered deopt set for [lost-deopt]/[cc-delay], an OSR
    for [osr-fail]). All draws come from the injector's seeded PRNG, so a
    campaign is replayable from [(seed, spec)] alone. *)

type trigger =
  | Prob of float  (** Bernoulli draw per opportunity *)
  | At of int  (** one-shot: fires on exactly the Nth opportunity *)

type rule = { point : Point.t; trigger : trigger; param : int option }

type t = rule list

(** Parse the concrete syntax above. Rejects unknown points, out-of-range
    probabilities and duplicate points. *)
val parse : string -> (t, string) result

(** Round-trippable rendering ([parse (to_string s) = Ok s]). *)
val to_string : t -> string

(** The default campaign: every fault point armed at a moderate seeded rate
    (documented in lib/fault/README.md). *)
val default : t
