(** Fault-spec parsing (see spec.mli). *)

type trigger = Prob of float | At of int

type rule = { point : Point.t; trigger : trigger; param : int option }

type t = rule list

let ( let* ) = Result.bind

let parse_point name =
  match Point.of_name name with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown fault point %S (known: %s)" name
         (String.concat ", " (List.map Point.name Point.all)))

let parse_prob s =
  match float_of_string_opt s with
  | Some p when p >= 0.0 && p <= 1.0 -> Ok p
  | _ -> Error (Printf.sprintf "probability %S must be a float in [0, 1]" s)

let parse_param s =
  match int_of_string_opt s with
  | Some n when n >= 1 -> Ok n
  | _ -> Error (Printf.sprintf "parameter %S must be a positive integer" s)

let parse_rule tok =
  match String.index_opt tok '@' with
  | Some i ->
    (* one-shot trigger: point@N fires on the Nth opportunity *)
    let* point = parse_point (String.sub tok 0 i) in
    let* n = parse_param (String.sub tok (i + 1) (String.length tok - i - 1)) in
    Ok { point; trigger = At n; param = None }
  | None -> (
    match String.split_on_char ':' tok with
    | [ name ] ->
      let* point = parse_point name in
      Ok { point; trigger = Prob 1.0; param = None }
    | [ name; prob ] ->
      let* point = parse_point name in
      let* p = parse_prob prob in
      Ok { point; trigger = Prob p; param = None }
    | [ name; prob; param ] ->
      let* point = parse_point name in
      let* p = parse_prob prob in
      let* q = parse_param param in
      Ok { point; trigger = Prob p; param = Some q }
    | _ -> Error (Printf.sprintf "cannot parse fault rule %S" tok))

let parse s =
  let toks =
    List.filter
      (fun tok -> tok <> "")
      (List.map String.trim (String.split_on_char ',' s))
  in
  if toks = [] then Error "empty fault spec"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | tok :: rest ->
        let* r = parse_rule tok in
        if List.exists (fun r' -> r'.point = r.point) acc then
          Error
            (Printf.sprintf "fault point %s appears twice in the spec"
               (Point.name r.point))
        else go (r :: acc) rest
    in
    go [] toks

let rule_to_string r =
  match r.trigger with
  | At n -> Printf.sprintf "%s@%d" (Point.name r.point) n
  | Prob 1.0 when r.param = None -> Point.name r.point
  | Prob p -> (
    let base = Printf.sprintf "%s:%g" (Point.name r.point) p in
    match r.param with None -> base | Some q -> Printf.sprintf "%s:%d" base q)

let to_string rules = String.concat "," (List.map rule_to_string rules)

(* Default campaign rates: high enough that every point fires on suite-sized
   workloads, low enough that an injected run still makes progress. Delivery
   of delayed exceptions defaults to 8 Class Cache accesses late. *)
let default =
  [
    { point = Point.Cc_evict; trigger = Prob 0.02; param = None };
    { point = Point.Cc_drop_update; trigger = Prob 0.05; param = None };
    { point = Point.Cl_flip_init; trigger = Prob 0.005; param = None };
    { point = Point.Cl_flip_valid; trigger = Prob 0.005; param = None };
    { point = Point.Cl_flip_speculate; trigger = Prob 0.005; param = None };
    { point = Point.Cc_spurious_exn; trigger = Prob 0.005; param = None };
    { point = Point.Cc_delayed_exn; trigger = Prob 0.5; param = Some 8 };
    { point = Point.Lost_deopt; trigger = Prob 0.5; param = None };
    { point = Point.Osr_fail; trigger = Prob 0.25; param = None };
  ]
