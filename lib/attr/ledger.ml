(** Attribution ledger (see ledger.mli). *)

type keep_cause =
  | Kc_poly of { shapes : int }
  | Kc_mega
  | Kc_init_unset
  | Kc_valid_cleared
  | Kc_speculate_conflict
  | Kc_cc_eviction
  | Kc_backoff_pin
  | Kc_cold
  | Kc_untyped
  | Kc_mechanism_off

let keep_cause_name = function
  | Kc_poly { shapes } -> Printf.sprintf "polymorphic(%d shapes)" shapes
  | Kc_mega -> "megamorphic"
  | Kc_init_unset -> "initmap-unset"
  | Kc_valid_cleared -> "validmap-cleared"
  | Kc_speculate_conflict -> "speculatemap-conflict"
  | Kc_cc_eviction -> "cc-eviction"
  | Kc_backoff_pin -> "backoff-pin"
  | Kc_cold -> "cold-feedback"
  | Kc_untyped -> "untyped-value"
  | Kc_mechanism_off -> "mechanism-off"

let all_keep_causes =
  [ Kc_poly { shapes = 2 }; Kc_mega; Kc_init_unset; Kc_valid_cleared;
    Kc_speculate_conflict; Kc_cc_eviction; Kc_backoff_pin; Kc_cold;
    Kc_untyped; Kc_mechanism_off ]

type decision = Removed | Kept of keep_cause

type site = {
  fn : string;
  pc : int;
  kind : string;
  classid : int;
  decision : decision;
  note : string;
}

type deopt = { fn : string; reason : Reason.t }

type chain = {
  at : int;
  store : string;
  classid : int;
  line : int;
  pos : int;
  victims : string list;
  mutable respec : (string * string) list;
}

type t = {
  enabled : bool;
  mutable site_log : site list;  (** newest first *)
  mutable deopt_log : deopt list;
  mutable chain_log : chain list;
  mutable pin_log : (string * int) list;
}

let null =
  { enabled = false; site_log = []; deopt_log = []; chain_log = []; pin_log = [] }

let create () =
  { enabled = true; site_log = []; deopt_log = []; chain_log = []; pin_log = [] }

let on t = t.enabled

let record_site t ~fn ~pc ~kind ?(classid = -1) ?(note = "") decision =
  if t.enabled then
    t.site_log <- { fn; pc; kind; classid; decision; note } :: t.site_log

let record_deopt t ~fn ~reason =
  if t.enabled then t.deopt_log <- { fn; reason } :: t.deopt_log

let record_chain t ~at ~store ~classid ~line ~pos ~victims =
  if t.enabled then
    t.chain_log <-
      { at; store; classid; line; pos; victims; respec = [] } :: t.chain_log

let record_respec t ~fn ~outcome =
  if t.enabled then
    (* chain_log is newest-first, so the first match is the most recent
       exception that victimized [fn] and has no outcome for it yet. *)
    match
      List.find_opt
        (fun c -> List.mem fn c.victims && not (List.mem_assoc fn c.respec))
        t.chain_log
    with
    | Some c -> c.respec <- (fn, outcome) :: c.respec
    | None -> ()

let record_pin t ~fn ~exponent =
  if t.enabled then t.pin_log <- (fn, exponent) :: t.pin_log

let slot_retired t ~classid ~line ~pos =
  t.enabled
  && List.exists
       (fun c -> c.classid = classid && c.line = line && c.pos = pos)
       t.chain_log

let sites t = List.rev t.site_log
let deopts t = List.rev t.deopt_log
let chains t = List.rev t.chain_log
let pins t = List.rev t.pin_log
