(** The attribution ledger: per-site check decisions, deopt events, and
    CC-exception causal chains, recorded as the optimizer and engine run.

    A ledger is either {!null} (disabled — every recording call is a no-op
    and costs nothing; the default everywhere) or {!create}d (enabled — the
    engine and optimizer append events). Recording never touches simulated
    state: cycles are bit-identical with any ledger (asserted by
    [test/test_attr.ml]).

    Three streams:
    - {b sites}: one entry per check site per compilation, saying whether
      the check was removed or kept, and {e why} it was kept;
    - {b deopts}: one entry per runtime deoptimization, carrying the typed
      {!Reason.t};
    - {b chains}: one entry per Class-Cache exception, linking the faulting
      store → the CC exception → the FunctionList victims → each victim's
      re-speculation outcome. *)

(** Why the optimizer kept (did not remove) a check. *)
type keep_cause =
  | Kc_poly of { shapes : int }  (** polymorphic IC slot ([shapes] ≥ 2) *)
  | Kc_mega  (** megamorphic IC slot *)
  | Kc_init_unset  (** Class List InitMap bit clear: slot never profiled *)
  | Kc_valid_cleared  (** ValidMap cleared: the slot went polymorphic *)
  | Kc_speculate_conflict
      (** profile currently claims a different class than the IC shape *)
  | Kc_cc_eviction  (** profile retired by a CC eviction / exception *)
  | Kc_backoff_pin  (** function pinned to the interpreter by deopt backoff *)
  | Kc_cold  (** feedback site never executed *)
  | Kc_untyped
      (** the value reached the check with no proven type: its producing
          site (parameter, call result, unprofiled load) did not speculate —
          the per-slot cause lives on that site's own ledger entry *)
  | Kc_mechanism_off  (** checks-on reference run: nothing is removable *)

val keep_cause_name : keep_cause -> string
val all_keep_causes : keep_cause list

type decision = Removed | Kept of keep_cause

type site = {
  fn : string;  (** function being compiled *)
  pc : int;  (** bytecode pc of the check site *)
  kind : string;  (** check-kind name (Categories.check_kind_name) *)
  classid : int;  (** hidden class involved, [-1] when none *)
  decision : decision;
  note : string;  (** free-form detail, e.g. the property position *)
}

type deopt = { fn : string; reason : Reason.t }

type chain = {
  at : int;  (** simulated cycle of the CC exception *)
  store : string;  (** rendering of the faulting store *)
  classid : int;
  line : int;
  pos : int;
  victims : string list;  (** FunctionList entries deoptimized *)
  mutable respec : (string * string) list;
      (** per victim: re-speculation outcome ("reoptimized", "bailed out",
          "backoff-pinned", …) — filled in as victims come back *)
}

type t

val null : t
val create : unit -> t
val on : t -> bool

val record_site :
  t -> fn:string -> pc:int -> kind:string -> ?classid:int -> ?note:string ->
  decision -> unit

val record_deopt : t -> fn:string -> reason:Reason.t -> unit

val record_chain :
  t -> at:int -> store:string -> classid:int -> line:int -> pos:int ->
  victims:string list -> unit

(** Attach a re-speculation outcome to the newest chain that names [fn] as
    a victim and has no outcome for it yet; a no-op when none does. *)
val record_respec : t -> fn:string -> outcome:string -> unit

val record_pin : t -> fn:string -> exponent:int -> unit

(** Did a recorded CC-exception chain retire slot [(classid, line, pos)]?
    Lets the optimizer attribute a cleared ValidMap bit to a Class Cache
    eviction rather than organic polymorphism. Always [false] on {!null}. *)
val slot_retired : t -> classid:int -> line:int -> pos:int -> bool

(** Accessors (oldest first). *)
val sites : t -> site list

val deopts : t -> deopt list
val chains : t -> chain list
val pins : t -> (string * int) list
