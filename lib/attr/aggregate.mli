(** Rolls attribution ledgers and per-kind check counters into the
    paper-figure reports: text tables (via {!Tce_support.Table}), JSON
    documents in the {!Tce_obs.Export} envelope (kind ["attr-report"]), and
    the [--explain] rendering.

    [Aggregate] is pure presentation: callers (tcejs, bench, the runner)
    hand it plain data — it never reaches into the engine. *)

val report_kind : string
(** The envelope kind, ["attr-report"]. *)

(** One paper-figure row: dynamic check-instruction counts of one check
    kind, with the mechanism off and on. [removed = off - on]. *)
type kind_row = { kind : string; off : int; on_ : int }

val kind_rows :
  names:string list -> off:int array -> on_:int array -> kind_row list
(** Pair up [names.(i)] with [off.(i+1)]/[on_.(i+1)] — index 0 of the
    counter arrays is the unattributed slot, asserted zero. *)

val kind_table : kind_row list -> string
(** "Checks removed by kind" (paper Fig. 10/11 shape). *)

val cause_histogram : Ledger.t -> (string * int) list
(** Kept-check causes over all compile-time site decisions, most frequent
    first. *)

val cause_table : (string * int) list -> string

val kept_sites_text : Ledger.t -> string
(** Per-site verdicts: every kept check with its cause, every removed one
    collapsed into a count per function. *)

val chains_text : ?max_chains:int -> Ledger.t -> string
(** Top-N deopt causal chains (faulting store → CC exception → victims →
    re-speculation outcome) plus a reason histogram of plain deopts. *)

val heatmap_text : occupancy:int array -> conflicts:int array -> string
(** Class Cache per-set occupancy / conflict heatmap. *)

val explain_text :
  program:string ->
  checks_executed:(string * int) list ->
  ?cc_occupancy:int array ->
  ?cc_conflicts:int array ->
  Ledger.t ->
  string
(** The full [tcejs run --explain] text report. [checks_executed] is the
    per-kind dynamic count of checks that actually ran (kept checks). *)

val report_json :
  program:string ->
  ?kind_rows:kind_row list ->
  checks_executed:(string * int) list ->
  ?cc_occupancy:int array ->
  ?cc_conflicts:int array ->
  Ledger.t ->
  Tce_obs.Json.t
(** Single-program report document (envelope kind {!report_kind}). *)

val suite_report_json :
  (string * kind_row list) list -> Tce_obs.Json.t
(** Suite-level report: per-workload composition rows (from benchmark
    records) plus roster-wide per-kind totals. *)

val suite_table : (string * kind_row list) list -> string
(** Text rendering of the suite report: totals table plus a per-workload
    removal-composition table. *)
