(** Structured deopt/check reasons (see reason.mli). *)

module J = Tce_obs.Json

type access = A_load | A_store

type overflow = Ov_arith | Ov_ushr | Ov_negate | Ov_abs

type cold_site =
  | Cold_arith
  | Cold_prop_load
  | Cold_elem_load
  | Cold_prop_store
  | Cold_elem_store
  | Cold_ctor

type cc_site =
  | Cc_prop_store of { line : int; pos : int }
  | Cc_elem_store
  | Cc_elem_store_slow
  | Cc_generic_prop_store
  | Cc_generic_elem_store
  | Cc_push

type osr_site = Osr_call | Osr_ctor

type cause =
  | C_not_class
  | C_poly_ic of access
  | C_not_number
  | C_not_heapnum
  | C_not_smi
  | C_inexact_int32
  | C_overflow of overflow
  | C_div_inexact
  | C_mod_zero
  | C_oob
  | C_cold of cold_site
  | C_cc of cc_site
  | C_osr of osr_site

type kind =
  | K_check_map
  | K_check_smi
  | K_untag
  | K_smi_convert
  | K_checked_load
  | K_math
  | K_bounds
  | K_cc
  | K_cold
  | K_osr

type t = { kind : kind; cause : cause; pc : int; classid : int }

let make ?(classid = -1) kind cause ~pc = { kind; cause; pc; classid }

(* --- kinds --- *)

let all_kinds =
  [
    K_check_map; K_check_smi; K_untag; K_smi_convert; K_checked_load;
    K_math; K_bounds; K_cc; K_cold; K_osr;
  ]

let kind_name = function
  | K_check_map -> "check-map"
  | K_check_smi -> "check-smi"
  | K_untag -> "untag"
  | K_smi_convert -> "smi-convert"
  | K_checked_load -> "checked-load"
  | K_math -> "math"
  | K_bounds -> "bounds"
  | K_cc -> "cc"
  | K_cold -> "cold"
  | K_osr -> "osr"

let kind_of_name s = List.find_opt (fun k -> kind_name k = s) all_kinds

(* --- causes --- *)

let cold_name = function
  | Cold_arith -> "arith"
  | Cold_prop_load -> "prop-load"
  | Cold_elem_load -> "elem-load"
  | Cold_prop_store -> "prop-store"
  | Cold_elem_store -> "elem-store"
  | Cold_ctor -> "ctor"

let all_colds =
  [ Cold_arith; Cold_prop_load; Cold_elem_load; Cold_prop_store;
    Cold_elem_store; Cold_ctor ]

let overflow_name = function
  | Ov_arith -> "arith"
  | Ov_ushr -> "ushr"
  | Ov_negate -> "negate"
  | Ov_abs -> "abs"

let all_overflows = [ Ov_arith; Ov_ushr; Ov_negate; Ov_abs ]

let osr_name = function Osr_call -> "call" | Osr_ctor -> "ctor"

let all_causes =
  [ C_not_class; C_poly_ic A_load; C_poly_ic A_store; C_not_number;
    C_not_heapnum; C_not_smi; C_inexact_int32 ]
  @ List.map (fun o -> C_overflow o) all_overflows
  @ [ C_div_inexact; C_mod_zero; C_oob ]
  @ List.map (fun c -> C_cold c) all_colds
  @ [
      C_cc (Cc_prop_store { line = 0; pos = 1 });
      C_cc Cc_elem_store;
      C_cc Cc_elem_store_slow;
      C_cc Cc_generic_prop_store;
      C_cc Cc_generic_elem_store;
      C_cc Cc_push;
      C_osr Osr_call;
      C_osr Osr_ctor;
    ]

let cause_name = function
  | C_not_class -> "not-class"
  | C_poly_ic A_load -> "poly-load"
  | C_poly_ic A_store -> "poly-store"
  | C_not_number -> "not-number"
  | C_not_heapnum -> "not-heapnum"
  | C_not_smi -> "not-smi"
  | C_inexact_int32 -> "inexact-int32"
  | C_overflow o -> "overflow-" ^ overflow_name o
  | C_div_inexact -> "div-inexact"
  | C_mod_zero -> "mod-zero"
  | C_oob -> "oob"
  | C_cold c -> "cold-" ^ cold_name c
  | C_cc (Cc_prop_store { line; pos }) ->
    Printf.sprintf "cc-prop-store(%d,%d)" line pos
  | C_cc Cc_elem_store -> "cc-elem-store"
  | C_cc Cc_elem_store_slow -> "cc-elem-store-slow"
  | C_cc Cc_generic_prop_store -> "cc-generic-prop-store"
  | C_cc Cc_generic_elem_store -> "cc-generic-elem-store"
  | C_cc Cc_push -> "cc-push"
  | C_osr o -> "osr-" ^ osr_name o

let cause_of_name s =
  (* Parameterized cc-prop-store first; everything else is a fixed token. *)
  let n = String.length s in
  let prefix = "cc-prop-store(" in
  let pn = String.length prefix in
  if n > pn && String.sub s 0 pn = prefix && s.[n - 1] = ')' then
    match String.split_on_char ',' (String.sub s pn (n - pn - 1)) with
    | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some line, Some pos -> Some (C_cc (Cc_prop_store { line; pos }))
      | _ -> None)
    | _ -> None
  else
    List.find_opt
      (fun c ->
        match c with
        | C_cc (Cc_prop_store _) -> false
        | c -> cause_name c = s)
      all_causes

(* --- canonical string form --- *)

let to_string (r : t) =
  Printf.sprintf "%s:%s@%d#%d" (kind_name r.kind) (cause_name r.cause) r.pc
    r.classid

let of_string s =
  match String.index_opt s '@' with
  | None -> None
  | Some at -> (
    match String.index_from_opt s at '#' with
    | None -> None
    | Some hash -> (
      let head = String.sub s 0 at in
      let pc_s = String.sub s (at + 1) (hash - at - 1) in
      let cid_s = String.sub s (hash + 1) (String.length s - hash - 1) in
      match String.index_opt head ':' with
      | None -> None
      | Some colon -> (
        let kind_s = String.sub head 0 colon in
        let cause_s =
          String.sub head (colon + 1) (String.length head - colon - 1)
        in
        match
          ( kind_of_name kind_s, cause_of_name cause_s,
            int_of_string_opt pc_s, int_of_string_opt cid_s )
        with
        | Some kind, Some cause, Some pc, Some classid ->
          Some { kind; cause; pc; classid }
        | _ -> None)))

(* --- human rendering --- *)

let describe (r : t) =
  let site = Printf.sprintf " (pc %d)" r.pc in
  let cls = if r.classid >= 0 then Printf.sprintf " class %d" r.classid else "" in
  let what =
    match r.cause with
    | C_not_class ->
      Printf.sprintf "receiver is not%s" (if cls = "" then " the speculated class" else cls)
    | C_poly_ic A_load -> "receiver class not in polymorphic load IC"
    | C_poly_ic A_store -> "receiver class not in polymorphic store IC"
    | C_not_number -> "value is neither SMI nor HeapNumber"
    | C_not_heapnum -> "value is not a HeapNumber"
    | C_not_smi -> "value is not an SMI"
    | C_inexact_int32 -> "double value is not an exact int32"
    | C_overflow Ov_arith -> "integer add/sub/mul overflowed"
    | C_overflow Ov_ushr -> "ushr result exceeds SMI range"
    | C_overflow Ov_negate -> "integer negate overflowed"
    | C_overflow Ov_abs -> "abs of most-negative SMI"
    | C_div_inexact -> "zero divisor or inexact quotient"
    | C_mod_zero -> "zero divisor"
    | C_oob -> "element index out of range"
    | C_cold Cold_arith -> "arithmetic site never executed"
    | C_cold Cold_prop_load -> "property load site never executed"
    | C_cold Cold_elem_load -> "element load site never executed"
    | C_cold Cold_prop_store -> "property store site never executed"
    | C_cold Cold_elem_store -> "element store site never executed"
    | C_cold Cold_ctor -> "constructor base class unknown"
    | C_cc (Cc_prop_store { line; pos }) ->
      Printf.sprintf "special store broke profile (line %d pos %d)" line pos
    | C_cc Cc_elem_store -> "special element store broke profile"
    | C_cc Cc_elem_store_slow ->
      "slow-path element store retired a speculated profile"
    | C_cc Cc_generic_prop_store ->
      "generic property store retired a speculated profile"
    | C_cc Cc_generic_elem_store ->
      "generic element store retired a speculated profile"
    | C_cc Cc_push -> "push store retired a speculated profile"
    | C_osr Osr_call -> "callee invalidated this code during the call"
    | C_osr Osr_ctor -> "callee invalidated this code during constructor call"
  in
  Printf.sprintf "%s: %s%s" (kind_name r.kind) what site

(* --- JSON --- *)

let to_json (r : t) =
  J.Obj
    [
      ("kind", J.Str (kind_name r.kind));
      ("cause", J.Str (cause_name r.cause));
      ("pc", J.Int r.pc);
      ("classid", J.Int r.classid);
    ]

let of_json j =
  match
    ( Option.bind (J.member "kind" j) J.to_str,
      Option.bind (J.member "cause" j) J.to_str,
      Option.bind (J.member "pc" j) J.to_int,
      Option.bind (J.member "classid" j) J.to_int )
  with
  | Some k, Some c, Some pc, Some classid -> (
    match (kind_of_name k, cause_of_name c) with
    | Some kind, Some cause -> Some { kind; cause; pc; classid }
    | _ -> None)
  | _ -> None

let compare (a : t) (b : t) = Stdlib.compare a b
