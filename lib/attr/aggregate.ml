(** Attribution reports (see aggregate.mli). *)

module J = Tce_obs.Json
module Table = Tce_support.Table

let report_kind = "attr-report"

type kind_row = { kind : string; off : int; on_ : int }

let kind_rows ~names ~off ~on_ =
  assert (Array.length off = List.length names + 1);
  assert (Array.length on_ = List.length names + 1);
  (* Slot 0 holds checks no emission site attributed to a kind; the
     optimizer tags every C_check instruction, so it must be empty. *)
  assert (off.(0) = 0 && on_.(0) = 0);
  List.mapi (fun i kind -> { kind; off = off.(i + 1); on_ = on_.(i + 1) }) names

let removal_pct r =
  if r.off = 0 then 0.0 else 100.0 *. float_of_int (r.off - r.on_) /. float_of_int r.off

let kind_table rows =
  let total =
    {
      kind = "total";
      off = List.fold_left (fun a r -> a + r.off) 0 rows;
      on_ = List.fold_left (fun a r -> a + r.on_) 0 rows;
    }
  in
  Table.render
    ~headers:[ "check kind"; "off"; "on"; "removed"; "removal" ]
    (List.map
       (fun r ->
         [
           r.kind;
           string_of_int r.off;
           string_of_int r.on_;
           string_of_int (r.off - r.on_);
           Table.pct (removal_pct r);
         ])
       (rows @ [ total ]))

(* --- kept-cause histogram --- *)

let cause_histogram (l : Ledger.t) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : Ledger.site) ->
      match s.Ledger.decision with
      | Ledger.Removed -> ()
      | Ledger.Kept c ->
        let k = Ledger.keep_cause_name c in
        Hashtbl.replace tbl k (1 + try Hashtbl.find tbl k with Not_found -> 0))
    (Ledger.sites l);
  List.sort
    (fun (ka, a) (kb, b) -> if a <> b then compare b a else compare ka kb)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let cause_table hist =
  if hist = [] then "(no kept checks)\n"
  else
    Table.render
      ~headers:[ "kept because"; "sites" ]
      (List.map (fun (k, v) -> [ k; string_of_int v ]) hist)

(* --- per-site verdicts --- *)

let kept_sites_text (l : Ledger.t) =
  let buf = Buffer.create 256 in
  let removed = Hashtbl.create 16 in
  List.iter
    (fun (s : Ledger.site) ->
      match s.Ledger.decision with
      | Ledger.Removed ->
        Hashtbl.replace removed s.Ledger.fn
          (1 + try Hashtbl.find removed s.Ledger.fn with Not_found -> 0)
      | Ledger.Kept c ->
        Buffer.add_string buf
          (Printf.sprintf "  kept    %-12s pc %-4d %-12s%s — %s%s\n"
             s.Ledger.fn s.Ledger.pc s.Ledger.kind
             (if s.Ledger.classid >= 0 then
                Printf.sprintf " class %d" s.Ledger.classid
              else "")
             (Ledger.keep_cause_name c)
             (if s.Ledger.note = "" then "" else " (" ^ s.Ledger.note ^ ")")))
    (Ledger.sites l);
  Hashtbl.fold (fun fn n acc -> (fn, n) :: acc) removed []
  |> List.sort compare
  |> List.iter (fun (fn, n) ->
         Buffer.add_string buf
           (Printf.sprintf "  removed %-12s %d check(s)\n" fn n));
  if Buffer.length buf = 0 then "(no check sites visited)\n"
  else Buffer.contents buf

(* --- deopt chains --- *)

let chain_text (c : Ledger.chain) =
  let respec fn =
    match List.assoc_opt fn c.Ledger.respec with
    | Some o -> o
    | None -> "not re-optimized"
  in
  Printf.sprintf "  cycle %d: %s (class %d, line %d, pos %d)\n    -> CC exception -> victims: %s\n%s"
    c.Ledger.at c.Ledger.store c.Ledger.classid c.Ledger.line c.Ledger.pos
    (match c.Ledger.victims with
    | [] -> "(none)"
    | vs -> String.concat ", " vs)
    (String.concat ""
       (List.map
          (fun fn -> Printf.sprintf "    -> %s: %s\n" fn (respec fn))
          c.Ledger.victims))

let chains_text ?(max_chains = 10) (l : Ledger.t) =
  let buf = Buffer.create 256 in
  let cs = Ledger.chains l in
  let n = List.length cs in
  List.iteri
    (fun i c -> if i < max_chains then Buffer.add_string buf (chain_text c))
    cs;
  if n > max_chains then
    Buffer.add_string buf (Printf.sprintf "  … %d more chain(s)\n" (n - max_chains));
  (* Plain deopts (no CC exception involved), as a reason histogram. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (d : Ledger.deopt) ->
      let k = Reason.describe d.Ledger.reason in
      Hashtbl.replace tbl k (1 + try Hashtbl.find tbl k with Not_found -> 0))
    (Ledger.deopts l);
  let hist =
    List.sort
      (fun (ka, a) (kb, b) -> if a <> b then compare b a else compare ka kb)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  if hist <> [] then begin
    Buffer.add_string buf "  deopt reasons:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "    %4d× %s\n" v k))
      hist
  end;
  if Buffer.length buf = 0 then "(no deopts)\n" else Buffer.contents buf

(* --- CC heatmap --- *)

let heatmap_text ~occupancy ~conflicts =
  let n = Array.length occupancy in
  let glyph v vmax =
    if vmax = 0 || v = 0 then '.'
    else
      let ramp = " .:-=+*#%@" in
      let i = 1 + (v * (String.length ramp - 2) / vmax) in
      ramp.[min i (String.length ramp - 1)]
  in
  let max_occ = Array.fold_left max 0 occupancy in
  let max_conf = Array.fold_left max 0 conflicts in
  let row label data vmax =
    let b = Buffer.create (n + 16) in
    Buffer.add_string b (Printf.sprintf "  %-10s " label);
    Array.iter (fun v -> Buffer.add_char b (glyph v vmax)) data;
    Buffer.add_string b (Printf.sprintf "  (max %d)\n" vmax);
    Buffer.contents b
  in
  Printf.sprintf "  set        %s\n%s%s"
    (String.init n (fun i -> if i mod 8 = 0 then Char.chr (48 + i / 8 mod 10) else ' '))
    (row "occupancy" occupancy max_occ)
    (row "conflicts" conflicts max_conf)

(* --- the --explain rendering --- *)

let executed_table checks_executed =
  Table.render
    ~headers:[ "check kind"; "executed (kept)" ]
    (List.map (fun (k, v) -> [ k; string_of_int v ]) checks_executed)

let explain_text ~program ~checks_executed ?cc_occupancy ?cc_conflicts l =
  let buf = Buffer.create 1024 in
  let section title body =
    Buffer.add_string buf ("== " ^ title ^ " ==\n");
    Buffer.add_string buf body;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf (Printf.sprintf "attribution report: %s\n\n" program);
  section "checks executed by kind" (executed_table checks_executed);
  section "why checks were kept" (cause_table (cause_histogram l));
  section "check sites" (kept_sites_text l);
  section "deopt causal chains" (chains_text l);
  (match (cc_occupancy, cc_conflicts) with
  | Some occupancy, Some conflicts ->
    section "class cache sets" (heatmap_text ~occupancy ~conflicts)
  | _ -> ());
  let pins = Ledger.pins l in
  if pins <> [] then
    section "backoff pins"
      (String.concat ""
         (List.map
            (fun (fn, e) -> Printf.sprintf "  %s (exponent %d)\n" fn e)
            pins));
  Buffer.contents buf

(* --- JSON --- *)

let kind_row_json r =
  J.Obj
    [
      ("kind", J.Str r.kind);
      ("off", J.Int r.off);
      ("on", J.Int r.on_);
      ("removed", J.Int (r.off - r.on_));
    ]

let site_json (s : Ledger.site) =
  J.Obj
    [
      ("fn", J.Str s.Ledger.fn);
      ("pc", J.Int s.Ledger.pc);
      ("kind", J.Str s.Ledger.kind);
      ("classid", J.Int s.Ledger.classid);
      ( "decision",
        J.Str
          (match s.Ledger.decision with
          | Ledger.Removed -> "removed"
          | Ledger.Kept c -> "kept:" ^ Ledger.keep_cause_name c) );
      ("note", J.Str s.Ledger.note);
    ]

let chain_json (c : Ledger.chain) =
  J.Obj
    [
      ("at", J.Int c.Ledger.at);
      ("store", J.Str c.Ledger.store);
      ("classid", J.Int c.Ledger.classid);
      ("line", J.Int c.Ledger.line);
      ("pos", J.Int c.Ledger.pos);
      ("victims", J.List (List.map (fun v -> J.Str v) c.Ledger.victims));
      ( "respeculation",
        J.Obj (List.map (fun (fn, o) -> (fn, J.Str o)) c.Ledger.respec) );
    ]

let ledger_json l =
  [
    ( "kept_causes",
      J.Obj (List.map (fun (k, v) -> (k, J.Int v)) (cause_histogram l)) );
    ("sites", J.List (List.map site_json (Ledger.sites l)));
    ( "deopts",
      J.List
        (List.map
           (fun (d : Ledger.deopt) ->
             J.Obj
               [
                 ("fn", J.Str d.Ledger.fn);
                 ("reason", Reason.to_json d.Ledger.reason);
                 ("rendered", J.Str (Reason.to_string d.Ledger.reason));
               ])
           (Ledger.deopts l)) );
    ("chains", J.List (List.map chain_json (Ledger.chains l)));
    ( "backoff_pins",
      J.List
        (List.map
           (fun (fn, e) -> J.Obj [ ("fn", J.Str fn); ("exponent", J.Int e) ])
           (Ledger.pins l)) );
  ]

let int_array_json a = J.List (Array.to_list (Array.map (fun v -> J.Int v) a))

let report_json ~program ?kind_rows ~checks_executed ?cc_occupancy
    ?cc_conflicts l =
  let cc =
    match (cc_occupancy, cc_conflicts) with
    | Some o, Some c ->
      [
        ( "cc_sets",
          J.Obj
            [
              ("occupancy", int_array_json o); ("conflicts", int_array_json c);
            ] );
      ]
    | _ -> []
  in
  let comp =
    match kind_rows with
    | Some rows -> [ ("checks_by_kind", J.List (List.map kind_row_json rows)) ]
    | None -> []
  in
  Tce_obs.Export.document ~kind:report_kind
    (J.Obj
       ([
          ("scope", J.Str "program");
          ("program", J.Str program);
          ( "checks_executed",
            J.Obj (List.map (fun (k, v) -> (k, J.Int v)) checks_executed) );
        ]
       @ comp
       @ ledger_json l
       @ cc))

(* --- suite-level --- *)

let sum_rows (per_workload : (string * kind_row list) list) : kind_row list =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (_, rows) ->
      List.iter
        (fun r ->
          match Hashtbl.find_opt tbl r.kind with
          | None ->
            order := r.kind :: !order;
            Hashtbl.add tbl r.kind (r.off, r.on_)
          | Some (o, n) -> Hashtbl.replace tbl r.kind (o + r.off, n + r.on_))
        rows)
    per_workload;
  List.rev_map
    (fun kind ->
      let off, on_ = Hashtbl.find tbl kind in
      { kind; off; on_ })
    !order

let suite_report_json per_workload =
  Tce_obs.Export.document ~kind:report_kind
    (J.Obj
       [
         ("scope", J.Str "suite");
         ( "totals",
           J.List (List.map kind_row_json (sum_rows per_workload)) );
         ( "workloads",
           J.List
             (List.map
                (fun (name, rows) ->
                  J.Obj
                    [
                      ("name", J.Str name);
                      ("checks_by_kind", J.List (List.map kind_row_json rows));
                    ])
                per_workload) );
       ])

let suite_table per_workload =
  let totals = sum_rows per_workload in
  let kinds = List.map (fun r -> r.kind) totals in
  let per_row (name, rows) =
    name
    :: List.map
         (fun k ->
           match List.find_opt (fun r -> r.kind = k) rows with
           | Some r -> Table.pct (removal_pct r)
           | None -> "-")
         kinds
  in
  "Checks removed by kind, roster totals:\n" ^ kind_table totals
  ^ "\nPer-workload removal rate by kind:\n"
  ^ Table.render ~headers:("workload" :: kinds) (List.map per_row per_workload)
