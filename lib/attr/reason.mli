(** Structured deopt/check reasons: the typed source of truth behind every
    reason the optimizer, machine, trace, and fault campaign report.

    A {!t} names the check {e kind} (which paper-figure bucket the guarding
    instruction belongs to), the {e cause} (why this particular deopt can
    fire), the bytecode {e site} pc (uniformly the pc of the faulting
    bytecode — the resume pc convention of [Lir.deopt_info.bc_pc] is a
    separate, semantic field), and the hidden-class id the speculation was
    about ([-1] when no class is involved).

    Strings are a {e rendering} of the variant: {!to_string} produces a
    canonical compact form that {!of_string} parses back losslessly
    (exhaustively tested in [test/test_attr.ml]), and {!describe} produces
    the human-readable sentence shown in traces and reports. *)

type access = A_load | A_store

type overflow = Ov_arith | Ov_ushr | Ov_negate | Ov_abs

type cold_site =
  | Cold_arith
  | Cold_prop_load
  | Cold_elem_load
  | Cold_prop_store
  | Cold_elem_store
  | Cold_ctor

type cc_site =
  | Cc_prop_store of { line : int; pos : int }
      (** a special property store broke the profiled slot *)
  | Cc_elem_store
  | Cc_elem_store_slow
  | Cc_generic_prop_store
  | Cc_generic_elem_store
  | Cc_push

type osr_site = Osr_call | Osr_ctor

type cause =
  | C_not_class  (** receiver's hidden class differs from the speculation *)
  | C_poly_ic of access  (** receiver matched none of the poly-IC shapes *)
  | C_not_number  (** value is neither SMI nor HeapNumber *)
  | C_not_heapnum
  | C_not_smi
  | C_inexact_int32  (** double value is not an exact int32 *)
  | C_overflow of overflow
  | C_div_inexact  (** zero divisor or inexact quotient *)
  | C_mod_zero
  | C_oob  (** element index out of range *)
  | C_cold of cold_site  (** feedback site never executed *)
  | C_cc of cc_site  (** a store retired a speculated profile *)
  | C_osr of osr_site  (** callee invalidated this code during the call *)

type kind =
  | K_check_map
  | K_check_smi
  | K_untag
  | K_smi_convert
  | K_checked_load
  | K_math
  | K_bounds
  | K_cc
  | K_cold
  | K_osr

type t = {
  kind : kind;
  cause : cause;
  pc : int;  (** bytecode pc of the faulting site (uniform convention) *)
  classid : int;  (** hidden class involved, [-1] when none *)
}

val make : ?classid:int -> kind -> cause -> pc:int -> t

val kind_name : kind -> string
val kind_of_name : string -> kind option
val all_kinds : kind list

(** Representative values of every cause constructor (parameterized causes
    appear once with fixed payloads) — for exhaustiveness-style tests and
    report legends. *)
val all_causes : cause list

val cause_name : cause -> string
val cause_of_name : string -> cause option

(** Canonical compact rendering, e.g.
    ["check-map:not-class@17#12"] or ["cc:cc-prop-store(0,3)@44#9"].
    Lossless: [of_string (to_string r) = Some r]. *)
val to_string : t -> string

val of_string : string -> t option

(** Human-readable sentence, e.g.
    ["check-map: receiver is not class 12 (pc 17)"] — what traces and
    [--explain] print. *)
val describe : t -> string

val to_json : t -> Tce_obs.Json.t
val of_json : Tce_obs.Json.t -> t option

(** Total order (for stable report sorting). *)
val compare : t -> t -> int
