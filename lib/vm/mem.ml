(** Simulated byte-addressable memory. Backing store is a growable array of
    8-byte words indexed by [byte_addr / 8]; all accesses are word-aligned
    (the engine only ever issues aligned word accesses, like V8 does for
    tagged slots). Addresses double as the physical addresses seen by the
    cache hierarchy of the timing simulator. *)

type t = {
  mutable words : int array;
  mutable next_free : int;  (** bump pointer, byte address *)
  base : int;
}

let default_base = 0x10000

let create ?(base = default_base) ?(capacity_words = 1 lsl 16) () =
  { words = Array.make capacity_words 0; next_free = base; base }

let word_index t addr =
  if addr land 7 <> 0 then invalid_arg (Printf.sprintf "Mem: unaligned access 0x%x" addr);
  if addr < t.base then invalid_arg (Printf.sprintf "Mem: access below heap base 0x%x" addr);
  (addr - t.base) / 8

let ensure t idx =
  let n = Array.length t.words in
  if idx >= n then begin
    let n' = max (idx + 1) (n * 2) in
    let words = Array.make n' 0 in
    Array.blit t.words 0 words 0 n;
    t.words <- words
  end

let load_slow t addr =
  let idx = word_index t addr in
  ensure t idx;
  t.words.(idx)

(** Aligned, in-bounds accesses — everything after warm-up — take a
    three-test fast path; anything else (including reads past the current
    backing array, which grow it and return 0) falls back to the checked
    slow path with identical semantics. *)
let load t addr =
  let idx = (addr - t.base) lsr 3 in
  if addr land 7 = 0 && addr >= t.base && idx < Array.length t.words then
    Array.unsafe_get t.words idx
  else load_slow t addr

let store_slow t addr v =
  let idx = word_index t addr in
  ensure t idx;
  t.words.(idx) <- v

let store t addr v =
  let idx = (addr - t.base) lsr 3 in
  if addr land 7 = 0 && addr >= t.base && idx < Array.length t.words then
    Array.unsafe_set t.words idx v
  else store_slow t addr v

(** Bump-allocate [bytes], aligned to [align] (a power of two). Returns the
    byte address. There is no collector: the reproduction uses a bump
    allocator (see DESIGN.md — GC is "Rest of Code" in the paper and
    orthogonal to the mechanism). *)
let allocate t ~bytes ~align =
  if align land (align - 1) <> 0 then invalid_arg "Mem.allocate: align not a power of 2";
  let addr = (t.next_free + align - 1) land lnot (align - 1) in
  t.next_free <- addr + bytes;
  ensure t (word_index t (addr + ((bytes + 7) / 8 * 8) - 8) + 1);
  addr

(** Total bytes ever allocated (bump high-water mark). *)
let allocated_bytes t = t.next_free - t.base
