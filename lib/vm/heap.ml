(** The simulated heap: allocation and access primitives for MiniJS values
    living in simulated memory ([Mem]).

    Heap numbers and strings keep their payloads in OCaml-side tables (one
    word in the object holds the table index); their *addresses* and header
    words are real so the timing simulator sees genuine memory traffic.

    No collector: bump allocation only (see DESIGN.md). *)

type stats = {
  mutable objects_allocated : int;
  mutable multi_line_objects : int;
  mutable object_bytes : int;
  mutable header_extra_bytes : int;
      (** bytes spent on line headers of lines >= 1 — the paper's §5.3.4
          "larger objects" overhead *)
  mutable numbers_allocated : int;
  mutable strings_allocated : int;
  mutable elements_allocated : int;
  mutable elements_grows : int;
}

type t = {
  mem : Mem.t;
  reg : Hidden_class.Registry.t;
  mutable strs : string array;
  mutable nstrs : int;
  true_v : Value.t;
  false_v : Value.t;
  null_v : Value.t;
  obj_capacity : Tce_support.Int_table.t;  (** object base addr -> allocated lines *)
  elem_capacity : Tce_support.Int_table.t;  (** elements base addr -> capacity (words) *)
  interned : (string, Value.t) Hashtbl.t;
  float_consts : Tce_support.Int_table.t;
      (** float-literal bits -> interned heap-number value (values are
          tagged pointers, never 0, so 0 doubles as the absent marker) *)
  stats : stats;
}

exception Runtime_error of string

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

let fresh_stats () =
  {
    objects_allocated = 0;
    multi_line_objects = 0;
    object_bytes = 0;
    header_extra_bytes = 0;
    numbers_allocated = 0;
    strings_allocated = 0;
    elements_allocated = 0;
    elements_grows = 0;
  }

let alloc_oddball mem (c : Hidden_class.t) =
  let addr = Mem.allocate mem ~bytes:Layout.line_bytes ~align:Layout.line_bytes in
  Mem.store mem addr (Hidden_class.class_word c ~line:0);
  Value.ptr addr

let create () =
  let mem = Mem.create () in
  let reg = Hidden_class.Registry.create mem in
  (* Materialize the built-in classes in a fixed id order. *)
  let bool_c = Hidden_class.Registry.boolean_class reg in
  let null_c = Hidden_class.Registry.null_class reg in
  ignore (Hidden_class.Registry.number_class reg);
  ignore (Hidden_class.Registry.string_class reg);
  ignore (Hidden_class.Registry.fixed_array_class reg);
  let true_v = alloc_oddball mem bool_c in
  let false_v = alloc_oddball mem bool_c in
  let null_v = alloc_oddball mem null_c in
  {
    mem;
    reg;
    strs = Array.make 64 "";
    nstrs = 0;
    true_v;
    false_v;
    null_v;
    obj_capacity = Tce_support.Int_table.create ~size:1024 ();
    elem_capacity = Tce_support.Int_table.create ~size:1024 ();
    interned = Hashtbl.create 256;
    float_consts = Tce_support.Int_table.create ~size:64 ();
    stats = fresh_stats ();
  }

let bool_v t b = if b then t.true_v else t.false_v

(* --- class inspection --- *)

let class_of_addr t addr =
  let w = Mem.load t.mem addr in
  Hidden_class.Registry.find_exn t.reg (Layout.classid_of_class_word w)

(** Hidden class of a value; SMIs answer [None]. *)
let class_of t (v : Value.t) =
  if Value.is_smi v then None else Some (class_of_addr t (Value.ptr_addr v))

(* Fast path: the ClassID is encoded in the class word itself
   (bits 48-55), and [Registry.find_exn] returns the class registered
   under exactly that id — so for any well-formed heap value, decoding the
   word is equivalent to the registry round-trip and skips it. *)
let classid_of t (v : Value.t) =
  if Value.is_smi v then Layout.smi_classid
  else Layout.classid_of_class_word (Mem.load t.mem (Value.ptr_addr v))

let is_null t v = v = t.null_v
let is_bool t v = v = t.true_v || v = t.false_v

(* --- heap numbers --- *)

let alloc_number t f : Value.t =
  t.stats.numbers_allocated <- t.stats.numbers_allocated + 1;
  let c = Hidden_class.Registry.number_class t.reg in
  (* Two words: class word + payload ([Fbits] encoding). Aligned to 16 to
     keep addresses well-formed; heap numbers are small and dense, like
     V8's. *)
  let addr = Mem.allocate t.mem ~bytes:16 ~align:16 in
  Mem.store t.mem addr (Hidden_class.class_word c ~line:0);
  Mem.store t.mem (addr + 8) (Fbits.of_float f);
  Value.ptr addr

let is_number t (v : Value.t) =
  (not (Value.is_smi v))
  && (class_of_addr t (Value.ptr_addr v)).Hidden_class.kind = Hidden_class.K_number

let number_value t (v : Value.t) =
  let addr = Value.ptr_addr v in
  Fbits.to_float (Mem.load t.mem (addr + 8))

(** Numeric value of an SMI or heap number. *)
let to_float t (v : Value.t) =
  if Value.is_smi v then float_of_int (Value.smi_value v) else number_value t v

(** Box a float: SMI when integral and in range (like V8 canonicalization
    of [Smi] results), heap number otherwise. The range test is performed
    on the float itself — [int_of_float] on a huge double is undefined. *)
let number t f : Value.t =
  if
    Float.is_integer f
    && f >= -2147483648.0
    && f <= 2147483647.0
    && not (f = 0.0 && 1.0 /. f < 0.0)
  then Value.smi (int_of_float f)
  else alloc_number t f

(** A float *literal* is materialized as an interned heap-number constant,
    never canonicalized to an SMI — double literals denote doubles (so a
    constructor seeding [this.x = 0.0] profiles the field as HeapNumber,
    like the double fields the paper's float benchmarks rely on). Computed
    results still canonicalize through {!number}. *)
let float_const t f : Value.t =
  let key = Fbits.of_float f in
  let cached = Tce_support.Int_table.find t.float_consts key 0 in
  if cached <> 0 then cached
  else begin
    let v = alloc_number t f in
    Tce_support.Int_table.set t.float_consts key v;
    v
  end

(* --- strings --- *)

let alloc_string t s : Value.t =
  t.stats.strings_allocated <- t.stats.strings_allocated + 1;
  if t.nstrs = Array.length t.strs then begin
    let a = Array.make (2 * t.nstrs) "" in
    Array.blit t.strs 0 a 0 t.nstrs;
    t.strs <- a
  end;
  let i = t.nstrs in
  t.strs.(i) <- s;
  t.nstrs <- i + 1;
  let c = Hidden_class.Registry.string_class t.reg in
  let addr = Mem.allocate t.mem ~bytes:24 ~align:8 in
  Mem.store t.mem addr (Hidden_class.class_word c ~line:0);
  Mem.store t.mem (addr + 8) i;
  (* length as a tagged SMI so optimized code can load it directly *)
  Mem.store t.mem (addr + 16) (Value.smi (String.length s));
  Value.ptr addr

(** All MiniJS strings are interned: equal contents share one heap object,
    so string equality in optimized code is a pointer compare. *)
let intern_string t s =
  match Hashtbl.find_opt t.interned s with
  | Some v -> v
  | None ->
    let v = alloc_string t s in
    Hashtbl.replace t.interned s v;
    v

let is_string t (v : Value.t) =
  (not (Value.is_smi v))
  && (class_of_addr t (Value.ptr_addr v)).Hidden_class.kind = Hidden_class.K_string

let string_value t (v : Value.t) =
  let addr = Value.ptr_addr v in
  t.strs.(Mem.load t.mem (addr + 8))

(* --- objects --- *)

(** Write class words into every allocated line of the object at [addr]. *)
let write_class_words t addr (c : Hidden_class.t) ~lines =
  for line = 0 to lines - 1 do
    Mem.store t.mem
      (addr + (line * Layout.line_bytes))
      (Hidden_class.class_word c ~line)
  done

(** Allocate an object of class [c] with room for [reserve_props] named
    properties (at least the class's current count). Slots are initialized
    to null; no elements array yet. *)
let alloc_object t (c : Hidden_class.t) ~reserve_props : Value.t =
  let nprops = max reserve_props (Hidden_class.num_props c) in
  let lines = Layout.lines_for_props nprops in
  let bytes = lines * Layout.line_bytes in
  let addr = Mem.allocate t.mem ~bytes ~align:Layout.line_bytes in
  t.stats.objects_allocated <- t.stats.objects_allocated + 1;
  t.stats.object_bytes <- t.stats.object_bytes + bytes;
  if lines > 1 then begin
    t.stats.multi_line_objects <- t.stats.multi_line_objects + 1;
    t.stats.header_extra_bytes <- t.stats.header_extra_bytes + ((lines - 1) * 8)
  end;
  write_class_words t addr c ~lines;
  (* Initialize all property slots to null and the reserved slots to 0. *)
  for line = 0 to lines - 1 do
    for pos = 1 to 7 do
      Mem.store t.mem (addr + (line * Layout.line_bytes) + (pos * 8)) t.null_v
    done
  done;
  Mem.store t.mem (addr + (Layout.elements_ptr_slot * 8)) 0;
  Mem.store t.mem (addr + (Layout.elements_len_slot * 8)) 0;
  Tce_support.Int_table.set t.obj_capacity addr lines;
  Value.ptr addr

let obj_lines t addr =
  match Tce_support.Int_table.find t.obj_capacity addr 0 with
  | 0 -> Hidden_class.lines (class_of_addr t addr)
  | l -> l

let is_object t (v : Value.t) =
  (not (Value.is_smi v))
  &&
  match (class_of_addr t (Value.ptr_addr v)).Hidden_class.kind with
  | Hidden_class.K_object | Hidden_class.K_array _ -> true
  | _ -> false

(** Load/store a named property at a known word slot. *)
let load_slot t (obj : Value.t) slot = Mem.load t.mem (Value.ptr_addr obj + (slot * 8))

let store_slot t (obj : Value.t) slot v =
  Mem.store t.mem (Value.ptr_addr obj + (slot * 8)) v

(** Transition [obj] to also hold property [name] (which must be absent) and
    store [v] there. Returns the slot written. *)
let define_prop t (obj : Value.t) name v =
  let addr = Value.ptr_addr obj in
  let c = class_of_addr t addr in
  if Hashtbl.mem c.Hidden_class.prop_index name then
    error "define_prop: %s already present on %s" name c.Hidden_class.name;
  let c' = Hidden_class.Registry.transition t.reg c name in
  let lines_needed = Hidden_class.lines c' in
  let cap = obj_lines t addr in
  if lines_needed > cap then
    error "object of class %s out of reserved property space (needs %d lines, has %d)"
      c'.Hidden_class.name lines_needed cap;
  write_class_words t addr c' ~lines:(max lines_needed 1);
  let slot = Layout.slot_of_prop_index (Hidden_class.num_props c' - 1) in
  store_slot t obj slot v;
  slot

(** Generic property read: [None] when the property is absent. *)
let get_prop t (obj : Value.t) name =
  let c = class_of_addr t (Value.ptr_addr obj) in
  match Hidden_class.slot_of_prop c name with
  | Some slot -> Some (load_slot t obj slot)
  | None -> None

(** Generic property write: stores in place when present, transitions when
    absent. Returns [(slot, transitioned)]. *)
let set_prop t (obj : Value.t) name v =
  let c = class_of_addr t (Value.ptr_addr obj) in
  match Hidden_class.slot_of_prop c name with
  | Some slot ->
    store_slot t obj slot v;
    (slot, false)
  | None -> (define_prop t obj name v, true)

(* --- elements arrays --- *)

let alloc_elements t ~capacity =
  t.stats.elements_allocated <- t.stats.elements_allocated + 1;
  let c = Hidden_class.Registry.fixed_array_class t.reg in
  let bytes = (Layout.elements_header_words + capacity) * 8 in
  let addr = Mem.allocate t.mem ~bytes ~align:8 in
  Mem.store t.mem addr (Hidden_class.class_word c ~line:0);
  Mem.store t.mem (addr + 8) capacity;
  for i = 0 to capacity - 1 do
    Mem.store t.mem (addr + Layout.elements_data_offset + (i * 8)) t.null_v
  done;
  Tce_support.Int_table.set t.elem_capacity addr capacity;
  addr

(** Allocate an array object of elements kind [ek] with [capacity] reserved
    element slots and length 0. *)
let alloc_array t ?(capacity = 4) ek : Value.t =
  let c = Hidden_class.Registry.array_class t.reg ek in
  let obj = alloc_object t c ~reserve_props:0 in
  let elems = alloc_elements t ~capacity:(max capacity 1) in
  store_slot t obj Layout.elements_ptr_slot elems;
  store_slot t obj Layout.elements_len_slot 0;
  obj

(** [array_new(n)] builtin: a pre-sized SMI array of length [n] filled with
    0 (MiniJS deviation from JS's holey undefined-fill, which keeps the
    elements kind meaningful; workloads initialize eagerly anyway). *)
let alloc_array_filled t n : Value.t =
  let obj = alloc_array t ~capacity:(max n 1) Hidden_class.E_smi in
  let elems = load_slot t obj Layout.elements_ptr_slot in
  for i = 0 to n - 1 do
    Mem.store t.mem (elems + Layout.elements_data_offset + (i * 8)) (Value.smi 0)
  done;
  store_slot t obj Layout.elements_len_slot (Value.smi n);
  obj

let elements_ptr t obj = load_slot t obj Layout.elements_ptr_slot

(* The elements length lives in the object's 4th word as a tagged SMI
   (paper §3.1 keeps it in the object), so optimized bounds checks are a
   plain load + compare. *)
let elements_len t obj = Value.smi_value (load_slot t obj Layout.elements_len_slot)
let set_elements_len t obj n = store_slot t obj Layout.elements_len_slot (Value.smi n)

let elements_capacity t elems_addr = Mem.load t.mem (elems_addr + 8)

let elem_addr elems_addr i = elems_addr + Layout.elements_data_offset + (i * 8)

(** Elements kind of any object: arrays carry it in their hidden class;
    plain objects (NodeList-style objects that also hold an elements array)
    always use tagged elements — their monomorphism is what the Class List's
    Prop2 profile captures. *)
let elements_kind t obj : Hidden_class.elements_kind =
  match (class_of_addr t (Value.ptr_addr obj)).Hidden_class.kind with
  | Hidden_class.K_array ek -> ek
  | _ -> Hidden_class.E_tagged

(** Read element [i]; out-of-bounds reads answer [null] (JS [undefined]).
    Double-kind arrays store raw [Fbits] payloads (V8's unboxed
    FixedDoubleArray); generic reads rebox them. *)
let elem_get t obj i =
  let len = elements_len t obj in
  if i < 0 || i >= len || elements_ptr t obj = 0 then t.null_v
  else
    let w = Mem.load t.mem (elem_addr (elements_ptr t obj) i) in
    match elements_kind t obj with
    | Hidden_class.E_double -> number t (Fbits.to_float w)
    | _ -> w

(** Grow the backing store to at least [min_capacity]; copies elements. *)
let grow_elements t obj ~min_capacity =
  t.stats.elements_grows <- t.stats.elements_grows + 1;
  let old = elements_ptr t obj in
  let old_cap = elements_capacity t old in
  let cap = max min_capacity (old_cap + (old_cap / 2) + 16) in
  let fresh = alloc_elements t ~capacity:cap in
  let len = elements_len t obj in
  for i = 0 to len - 1 do
    Mem.store t.mem (elem_addr fresh i) (Mem.load t.mem (elem_addr old i))
  done;
  store_slot t obj Layout.elements_ptr_slot fresh

(** Elements kind required to store [v] without transition. *)
let elements_kind_of_value t (v : Value.t) : Hidden_class.elements_kind =
  if Value.is_smi v then Hidden_class.E_smi
  else if is_number t v then Hidden_class.E_double
  else Hidden_class.E_tagged

let join_elements_kind a b : Hidden_class.elements_kind =
  match (a, b) with
  | Hidden_class.E_smi, k | k, Hidden_class.E_smi -> k
  | E_double, E_double -> E_double
  | _ -> E_tagged

(** Transition an array object's hidden class to elements kind [ek'],
    converting the stored representation of existing elements
    (tagged smi <-> raw double <-> tagged). *)
let transition_elements_kind t obj ek' =
  let addr = Value.ptr_addr obj in
  let ek = elements_kind t obj in
  let elems = elements_ptr t obj in
  let len = elements_len t obj in
  (match (ek, ek') with
  | Hidden_class.E_smi, Hidden_class.E_double ->
    for i = 0 to len - 1 do
      let w = Mem.load t.mem (elem_addr elems i) in
      Mem.store t.mem (elem_addr elems i)
        (Fbits.of_float (float_of_int (Value.smi_value w)))
    done
  | Hidden_class.E_double, Hidden_class.E_tagged ->
    for i = 0 to len - 1 do
      let w = Mem.load t.mem (elem_addr elems i) in
      Mem.store t.mem (elem_addr elems i) (number t (Fbits.to_float w))
    done
  | Hidden_class.E_smi, Hidden_class.E_tagged -> ()  (* smis are tagged *)
  | a, b when a = b -> ()
  | _ -> error "invalid elements kind transition");
  let c' = Hidden_class.Registry.array_class t.reg ek' in
  write_class_words t addr c' ~lines:1

(** Representation of [v] as an element word of kind [ek]. *)
let elem_repr t ek (v : Value.t) =
  match ek with
  | Hidden_class.E_double ->
    if Value.is_smi v then Fbits.of_float (float_of_int (Value.smi_value v))
    else Fbits.of_float (number_value t v)
  | _ -> v

(** Write element [i], growing and transitioning kind as needed. Writes past
    the current length extend it (dense-array discipline: workloads only
    append or write in-bounds, like the paper's benchmarks). Returns [true]
    if a slow path (growth/extension/kind transition) ran. *)
let elem_set t obj i v =
  if i < 0 then error "negative array index %d" i;
  if elements_ptr t obj = 0 then begin
    (* Lazy elements allocation for plain objects. *)
    let elems = alloc_elements t ~capacity:(max (i + 1) 4) in
    store_slot t obj Layout.elements_ptr_slot elems
  end;
  let len = elements_len t obj in
  let slow = ref false in
  let ek = elements_kind t obj in
  let joined =
    match (class_of_addr t (Value.ptr_addr obj)).Hidden_class.kind with
    | Hidden_class.K_array _ -> join_elements_kind ek (elements_kind_of_value t v)
    | _ -> Hidden_class.E_tagged
  in
  if joined <> ek then begin
    slow := true;
    transition_elements_kind t obj joined
  end;
  let elems = elements_ptr t obj in
  let cap = elements_capacity t elems in
  if i >= cap then begin
    slow := true;
    grow_elements t obj ~min_capacity:(i + 1)
  end;
  let elems = elements_ptr t obj in
  Mem.store t.mem (elem_addr elems i) (elem_repr t joined v);
  if i >= len then begin
    slow := true;
    set_elements_len t obj (i + 1)
  end;
  !slow

(* --- truthiness & printing --- *)

let is_truthy t (v : Value.t) =
  if Value.is_smi v then Value.smi_value v <> 0
  else if v = t.false_v || v = t.null_v then false
  else if v = t.true_v then true
  else if is_number t v then number_value t v <> 0.0
  else if is_string t v then String.length (string_value t v) > 0
  else true

let rec to_display_string t (v : Value.t) =
  if Value.is_smi v then string_of_int (Value.smi_value v)
  else if v = t.true_v then "true"
  else if v = t.false_v then "false"
  else if v = t.null_v then "null"
  else if is_number t v then
    let f = number_value t v in
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6g" f
  else if is_string t v then string_value t v
  else
    let c = class_of_addr t (Value.ptr_addr v) in
    match c.Hidden_class.kind with
    | Hidden_class.K_array _ ->
      let len = elements_len t v in
      let len' = min len 16 in
      let items = List.init len' (fun i -> to_display_string t (elem_get t v i)) in
      let items = if len > len' then items @ [ "..." ] else items in
      "[" ^ String.concat "," items ^ "]"
    | _ -> Printf.sprintf "[object %s]" c.Hidden_class.name
