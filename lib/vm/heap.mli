(** The simulated heap: allocation and access primitives for MiniJS values
    in simulated memory. Heap numbers store their payloads as {!Fbits}
    words; strings keep contents in an OCaml-side table (headers and
    addresses are real, so the timing simulator sees genuine traffic).
    Bump allocation only — no collector (DESIGN.md). *)

type stats = {
  mutable objects_allocated : int;
  mutable multi_line_objects : int;
  mutable object_bytes : int;
  mutable header_extra_bytes : int;
      (** bytes spent on line headers of lines >= 1 (paper §5.3.4) *)
  mutable numbers_allocated : int;
  mutable strings_allocated : int;
  mutable elements_allocated : int;
  mutable elements_grows : int;
}

type t = {
  mem : Mem.t;
  reg : Hidden_class.Registry.t;
  mutable strs : string array;
  mutable nstrs : int;
  true_v : Value.t;
  false_v : Value.t;
  null_v : Value.t;
  obj_capacity : Tce_support.Int_table.t;
  elem_capacity : Tce_support.Int_table.t;
  interned : (string, Value.t) Hashtbl.t;
  float_consts : Tce_support.Int_table.t;
  stats : stats;
}

exception Runtime_error of string

val create : unit -> t
val bool_v : t -> bool -> Value.t

(* --- class inspection --- *)

val class_of_addr : t -> int -> Hidden_class.t
val class_of : t -> Value.t -> Hidden_class.t option

(** ClassID of any value; SMIs answer {!Layout.smi_classid}. *)
val classid_of : t -> Value.t -> int

val is_null : t -> Value.t -> bool
val is_bool : t -> Value.t -> bool

(* --- numbers --- *)

val alloc_number : t -> float -> Value.t
val is_number : t -> Value.t -> bool
val number_value : t -> Value.t -> float

(** Numeric value of an SMI or heap number. *)
val to_float : t -> Value.t -> float

(** Box a float: SMI when integral and in range (V8 canonicalization),
    heap number otherwise. *)
val number : t -> float -> Value.t

(** Interned heap-number constant — float literals never become SMIs. *)
val float_const : t -> float -> Value.t

(* --- strings --- *)

val alloc_string : t -> string -> Value.t

(** All MiniJS strings are interned: content equality = pointer equality. *)
val intern_string : t -> string -> Value.t

val is_string : t -> Value.t -> bool
val string_value : t -> Value.t -> string

(* --- objects --- *)

val write_class_words : t -> int -> Hidden_class.t -> lines:int -> unit

(** Allocate an object with room for at least [reserve_props] named
    properties; slots initialized to null, no elements array. *)
val alloc_object : t -> Hidden_class.t -> reserve_props:int -> Value.t

val obj_lines : t -> int -> int
val is_object : t -> Value.t -> bool
val load_slot : t -> Value.t -> int -> Value.t
val store_slot : t -> Value.t -> int -> Value.t -> unit

(** Transition the object to also hold [name] and store the value; returns
    the slot. @raise Runtime_error when out of reserved space. *)
val define_prop : t -> Value.t -> string -> Value.t -> int

val get_prop : t -> Value.t -> string -> Value.t option

(** Store in place when present, transition when absent;
    returns [(slot, transitioned)]. *)
val set_prop : t -> Value.t -> string -> Value.t -> int * bool

(* --- elements arrays --- *)

val alloc_elements : t -> capacity:int -> int
val alloc_array : t -> ?capacity:int -> Hidden_class.elements_kind -> Value.t

(** [array_new n]: SMI array of length [n] filled with 0. *)
val alloc_array_filled : t -> int -> Value.t

val elements_ptr : t -> Value.t -> int
val elements_len : t -> Value.t -> int
val set_elements_len : t -> Value.t -> int -> unit
val elements_capacity : t -> int -> int
val elem_addr : int -> int -> int

(** Elements kind of any object (plain objects use tagged elements). *)
val elements_kind : t -> Value.t -> Hidden_class.elements_kind

(** Out-of-bounds reads answer null. *)
val elem_get : t -> Value.t -> int -> Value.t

val grow_elements : t -> Value.t -> min_capacity:int -> unit
val elements_kind_of_value : t -> Value.t -> Hidden_class.elements_kind
val join_elements_kind :
  Hidden_class.elements_kind -> Hidden_class.elements_kind ->
  Hidden_class.elements_kind

(** Transition an array's elements kind, converting representations. *)
val transition_elements_kind : t -> Value.t -> Hidden_class.elements_kind -> unit

val elem_repr : t -> Hidden_class.elements_kind -> Value.t -> int

(** Write element [i] (grow/extend/kind-transition as needed); [true] when a
    slow path ran. @raise Runtime_error on negative index. *)
val elem_set : t -> Value.t -> int -> Value.t -> bool

(* --- misc --- *)

val is_truthy : t -> Value.t -> bool
val to_display_string : t -> Value.t -> string
