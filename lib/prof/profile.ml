(** Deterministic simulated-time cycle-attribution profiler (see
    profile.mli and lib/prof/README.md).

    The machine owns a monotone cycle clock; the profiler keeps a watermark
    [last] of the highest cycle already attributed. At every
    cycle-advancing site the machine calls {!take}[ t cost now]: the delta
    [now - last] lands in the current site's flat accumulator cell and the
    watermark moves up. Because the clock never decreases and every
    mutation site is followed by exactly one [take], the per-cell sums
    equal the machine's total cycle count *by construction* — asserted in
    {!summarize}. The baseline tier is analytic (instructions x CPI), so
    its attribution counts instructions per bytecode pc instead.

    One profile instance serves exactly one engine: the watermark is
    meaningful only against a single machine clock. *)

(** {1 Cost kinds — the "why" axis of the machine-side matrix} *)

let n_cost = 9
let cost_dispatch = 0 (* issue-width / load/store-port contention *)
let cost_window = 1 (* window-full retire stalls (absorbs load latency) *)
let cost_icache = 2 (* L1I/L2/memory front-end bubbles + I-TLB misses *)
let cost_storeq = 3 (* store-queue-full stalls *)
let cost_branch = 4 (* branch-mispredict restarts *)
let cost_ccmiss = 5 (* Class Cache miss penalties *)
let cost_rt = 6 (* runtime-stub serialization (boxing, generic ops) *)
let cost_call = 7 (* guest call overhead (arg serialization + linkage) *)
let cost_deopt = 8 (* deoptimization penalties *)

let cost_names =
  [|
    "dispatch"; "window"; "icache"; "storeq"; "branch"; "cc-miss"; "rt-stub";
    "call"; "deopt";
  |]

let cost_name i = cost_names.(i)

(** {1 Baseline extras — instruction charges with no bytecode pc} *)

let n_extra = 3
let extra_transition = 0 (* hidden-class transition slow path *)
let extra_elem_grow = 1 (* elements backing-store growth *)
let extra_deopt_transition = 2 (* deopt frame reconstruction *)
let extra_names = [| "ic-transition"; "elem-grow"; "deopt-transition" |]

(** {1 Accumulators} *)

type acc = {
  id : int;
  name : string;
  labels : string array;  (** per-pc instruction label (category / kind) *)
  cells : int array;
      (** machine code: [n_pcs * n_cost] cycles; baseline code: [n_pcs]
          instruction counts *)
}

let acc_pcs (a : acc) = Array.length a.labels

(* Safe landing pad for [take] before the first [set_site]: one pc wide,
   with a full row of cost cells. It is never registered in a table, so any
   cycles parked here would be lost from reconciliation — the machine must
   [set_site] before its first attribution point (it does, at run entry). *)
let dummy_acc =
  { id = -1; name = "(none)"; labels = [| "-" |]; cells = Array.make n_cost 0 }

type t = {
  enabled : bool;
  mutable last : int;  (** machine-cycle watermark *)
  mutable cur : acc;
  mutable cur_pc : int;
  mutable cur_base : acc;
  mutable cur_base_pc : int;
  opt_accs : (int * int, acc) Hashtbl.t;
      (** keyed by (opt_id, n_pcs): opt_ids are fresh per compilation in the
          engine, but unit tests rebuild code under reused ids — keying on
          the length too keeps every accumulated cell in the reconciliation
          sum *)
  base_accs : (int * int, acc) Hashtbl.t;  (** keyed by (fn_id, n_pcs) *)
  extras : int array;  (** baseline instruction charges without a pc *)
  cost_totals : int array;  (** running machine-cycle totals per cost kind *)
}

let null =
  {
    enabled = false;
    last = 0;
    cur = dummy_acc;
    cur_pc = 0;
    cur_base = dummy_acc;
    cur_base_pc = 0;
    opt_accs = Hashtbl.create 1;
    base_accs = Hashtbl.create 1;
    extras = [| 0; 0; 0 |];
    cost_totals = Array.make n_cost 0;
  }

let create () =
  {
    enabled = true;
    last = 0;
    cur = dummy_acc;
    cur_pc = 0;
    cur_base = dummy_acc;
    cur_base_pc = 0;
    opt_accs = Hashtbl.create 64;
    base_accs = Hashtbl.create 64;
    extras = Array.make n_extra 0;
    cost_totals = Array.make n_cost 0;
  }

let on t = t.enabled

let register ~(table : (int * int, acc) Hashtbl.t) t ~id ~name ~labels =
  if not t.enabled then invalid_arg "Profile.register: profiler disabled";
  let key = (id, Array.length labels) in
  match Hashtbl.find_opt table key with
  | Some a -> a
  | None ->
    let a = { id; name; labels; cells = Array.make (Array.length labels * n_cost) 0 } in
    Hashtbl.replace table key a;
    a

let register_opt t ~id ~name ~labels = register ~table:t.opt_accs t ~id ~name ~labels

let register_base t ~id ~name ~labels =
  if not t.enabled then invalid_arg "Profile.register_base: profiler disabled";
  let key = (id, Array.length labels) in
  match Hashtbl.find_opt t.base_accs key with
  | Some a -> a
  | None ->
    let a =
      { id; name; labels; cells = Array.make (max 1 (Array.length labels)) 0 }
    in
    Hashtbl.replace t.base_accs key a;
    a

let find_opt_acc t ~id ~pcs = Hashtbl.find_opt t.opt_accs (id, pcs)
let find_base_acc t ~id ~pcs = Hashtbl.find_opt t.base_accs (id, pcs)

(* --- hot-path attribution (called only when [on t]) --- *)

let[@inline] set_site t a pc =
  t.cur <- a;
  t.cur_pc <- pc

let[@inline] take t cost now =
  let d = now - t.last in
  if d <> 0 then begin
    t.last <- now;
    let a = t.cur in
    let i = (t.cur_pc * n_cost) + cost in
    Array.unsafe_set a.cells i (Array.unsafe_get a.cells i + d);
    Array.unsafe_set t.cost_totals cost
      (Array.unsafe_get t.cost_totals cost + d)
  end

let[@inline] set_base_site t a pc =
  t.cur_base <- a;
  t.cur_base_pc <- pc

let[@inline] base_add t n =
  let a = t.cur_base in
  let i = t.cur_base_pc in
  Array.unsafe_set a.cells i (Array.unsafe_get a.cells i + n)

let[@inline] base_extra t k n = t.extras.(k) <- t.extras.(k) + n

let cost_totals_named t =
  Array.mapi (fun i v -> (cost_names.(i), v)) t.cost_totals

(* --- deterministic views --- *)

(** Accumulators in a deterministic order (Hashtbl iteration order is not
    one): by id, then stream length. *)
let sorted_accs table =
  let l = Hashtbl.fold (fun _ a acc -> a :: acc) table [] in
  List.sort
    (fun a b ->
      if a.id <> b.id then compare a.id b.id
      else compare (acc_pcs a) (acc_pcs b))
    l

let opt_cells_sum t =
  List.fold_left
    (fun s a -> Array.fold_left ( + ) s a.cells)
    0 (sorted_accs t.opt_accs)

let base_cells_sum t =
  List.fold_left
    (fun s a -> Array.fold_left ( + ) s a.cells)
    (Array.fold_left ( + ) 0 t.extras)
    (sorted_accs t.base_accs)

(* --- summaries --- *)

type site = { s_fn : string; s_pc : int; s_label : string; s_cycles : int }

type summary = {
  program : string;
  mechanism : bool;
  machine_cycles : int;
  baseline_instrs : int;
  baseline_cpi : float;
  total_cycles : float;
  by_cost : (string * int) array;  (** machine cycles per cost kind *)
  by_label : (string * int) array;
      (** machine cycles per instruction label (check kinds, tags-untags,
          math, cc-op, other), descending *)
  base_by_label : (string * int) array;
      (** baseline instructions per bytecode label + named extras,
          descending *)
  top_sites : site list;  (** hottest (function, pc) machine sites *)
}

let sorted_tally tbl =
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  Array.of_list
    (List.sort
       (fun (la, va) (lb, vb) -> if va <> vb then compare vb va else compare la lb)
       l)

let bump tbl k v =
  if v <> 0 then
    Hashtbl.replace tbl k (v + try Hashtbl.find tbl k with Not_found -> 0)

(** Build the per-run summary, asserting the reconciliation invariants:
    machine-side cell sums must equal the machine's total cycle count, and
    baseline-side sums (cells + extras) must equal the baseline instruction
    counter. A mismatch means a cycle-advancing site lost its [take] hook —
    a profiler bug, not a measurement artifact — so it fails loudly.
    [baseline_instrs] must come from a run without counter resets (the
    whole-run protocol). *)
let summarize t ~program ~mechanism ~machine_cycles ~baseline_instrs
    ~baseline_cpi ?(top = 20) () : summary =
  if not t.enabled then invalid_arg "Profile.summarize: profiler disabled";
  let opt_sum = opt_cells_sum t in
  if opt_sum <> machine_cycles then
    failwith
      (Printf.sprintf
         "%s: profile cells sum to %d cycles but the machine ran %d — a \
          cycle-advancing site is missing its attribution hook"
         program opt_sum machine_cycles);
  let base_sum = base_cells_sum t in
  if base_sum <> baseline_instrs then
    failwith
      (Printf.sprintf
         "%s: baseline profile sums to %d instructions but the counter saw \
          %d — a baseline charge site is missing its attribution hook"
         program base_sum baseline_instrs);
  let labels = Hashtbl.create 16 and sites = ref [] in
  List.iter
    (fun a ->
      for pc = 0 to acc_pcs a - 1 do
        let cyc = ref 0 in
        for c = 0 to n_cost - 1 do
          cyc := !cyc + a.cells.((pc * n_cost) + c)
        done;
        if !cyc > 0 then begin
          bump labels a.labels.(pc) !cyc;
          sites :=
            { s_fn = a.name; s_pc = pc; s_label = a.labels.(pc); s_cycles = !cyc }
            :: !sites
        end
      done)
    (sorted_accs t.opt_accs);
  let base_labels = Hashtbl.create 16 in
  List.iter
    (fun a ->
      Array.iteri (fun pc v -> if pc < acc_pcs a then bump base_labels a.labels.(pc) v) a.cells)
    (sorted_accs t.base_accs);
  Array.iteri (fun i v -> bump base_labels extra_names.(i) v) t.extras;
  let top_sites =
    let l =
      List.sort
        (fun a b ->
          if a.s_cycles <> b.s_cycles then compare b.s_cycles a.s_cycles
          else compare (a.s_fn, a.s_pc) (b.s_fn, b.s_pc))
        !sites
    in
    List.filteri (fun i _ -> i < top) l
  in
  {
    program;
    mechanism;
    machine_cycles;
    baseline_instrs;
    baseline_cpi;
    total_cycles =
      float_of_int machine_cycles
      +. (float_of_int baseline_instrs *. baseline_cpi);
    by_cost = cost_totals_named t;
    by_label = sorted_tally labels;
    base_by_label = sorted_tally base_labels;
    top_sites;
  }

(* --- collapsed-stack flamegraph export --- *)

(** Collapsed-stack ("folded") lines: [frame;frame;frame count], one sample
    set per line — the format speedscope and inferno/flamegraph.pl load
    directly. Machine cycles are exact; baseline cells are instruction
    counts scaled by the analytic CPI and rounded per cell. *)
let folded ?(root = "") ~baseline_cpi t =
  let buf = Buffer.create 8192 in
  let pre = if root = "" then "" else root ^ ";" in
  List.iter
    (fun a ->
      for pc = 0 to acc_pcs a - 1 do
        for c = 0 to n_cost - 1 do
          let v = a.cells.((pc * n_cost) + c) in
          if v > 0 then
            Buffer.add_string buf
              (Printf.sprintf "%soptimized;%s;pc%d:%s;%s %d\n" pre a.name pc
                 a.labels.(pc) cost_names.(c) v)
        done
      done)
    (sorted_accs t.opt_accs);
  let scale v = int_of_float (Float.round (float_of_int v *. baseline_cpi)) in
  List.iter
    (fun a ->
      Array.iteri
        (fun pc v ->
          if v > 0 && pc < acc_pcs a then
            Buffer.add_string buf
              (Printf.sprintf "%sbaseline;%s;pc%d:%s %d\n" pre a.name pc
                 a.labels.(pc) (scale v)))
        a.cells)
    (sorted_accs t.base_accs);
  Array.iteri
    (fun i v ->
      if v > 0 then
        Buffer.add_string buf
          (Printf.sprintf "%sbaseline;(runtime);%s %d\n" pre extra_names.(i)
             (scale v)))
    t.extras;
  Buffer.contents buf

let parse_folded s : ((string list * int) list, string) result =
  let exception Bad of string in
  try
    Ok
      (List.filter_map
         (fun line ->
           if String.trim line = "" then None
           else
             match String.rindex_opt line ' ' with
             | None -> raise (Bad ("no sample count: " ^ line))
             | Some i -> (
               let frames =
                 String.split_on_char ';' (String.sub line 0 i)
               in
               let count = String.sub line (i + 1) (String.length line - i - 1) in
               match int_of_string_opt count with
               | None -> raise (Bad ("bad sample count: " ^ line))
               | Some n ->
                 if frames = [] || List.exists (fun f -> f = "") frames then
                   raise (Bad ("empty frame: " ^ line));
                 Some (frames, n)))
         (String.split_on_char '\n' s))
  with Bad m -> Error m

(* --- summary JSON --- *)

module J = Tce_obs.Json

let tally_json a =
  J.Obj (Array.to_list (Array.map (fun (k, v) -> (k, J.Int v)) a))

let summary_to_json (s : summary) : J.t =
  J.Obj
    [
      ("program", J.Str s.program);
      ("mechanism", J.Bool s.mechanism);
      ("machine_cycles", J.Int s.machine_cycles);
      ("baseline_instrs", J.Int s.baseline_instrs);
      ("baseline_cpi", J.Float s.baseline_cpi);
      ("total_cycles", J.Float s.total_cycles);
      ("by_cost", tally_json s.by_cost);
      ("by_label", tally_json s.by_label);
      ("base_by_label", tally_json s.base_by_label);
      ( "top_sites",
        J.List
          (List.map
             (fun st ->
               J.Obj
                 [
                   ("fn", J.Str st.s_fn);
                   ("pc", J.Int st.s_pc);
                   ("label", J.Str st.s_label);
                   ("cycles", J.Int st.s_cycles);
                 ])
             s.top_sites) );
    ]

let field name conv j =
  match Option.bind (J.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad or missing field %S" name)

let ( let* ) = Result.bind

let tally_of_json name j =
  match J.member name j with
  | Some (J.Obj kvs) ->
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | (k, J.Int v) :: rest -> go ((k, v) :: acc) rest
      | _ -> Error (Printf.sprintf "bad field %S" name)
    in
    go [] kvs
  | _ -> Error (Printf.sprintf "bad or missing field %S" name)

let summary_of_json (j : J.t) : (summary, string) result =
  let* program = field "program" J.to_str j in
  let* mechanism =
    match J.member "mechanism" j with
    | Some (J.Bool b) -> Ok b
    | _ -> Error "bad or missing field \"mechanism\""
  in
  let* machine_cycles = field "machine_cycles" J.to_int j in
  let* baseline_instrs = field "baseline_instrs" J.to_int j in
  let* baseline_cpi = field "baseline_cpi" J.to_float j in
  let* total_cycles = field "total_cycles" J.to_float j in
  let* by_cost = tally_of_json "by_cost" j in
  let* by_label = tally_of_json "by_label" j in
  let* base_by_label = tally_of_json "base_by_label" j in
  let* top_sites =
    match J.member "top_sites" j with
    | Some (J.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | it :: rest ->
          let* s_fn = field "fn" J.to_str it in
          let* s_pc = field "pc" J.to_int it in
          let* s_label = field "label" J.to_str it in
          let* s_cycles = field "cycles" J.to_int it in
          go ({ s_fn; s_pc; s_label; s_cycles } :: acc) rest
      in
      go [] items
    | _ -> Error "bad or missing field \"top_sites\""
  in
  Ok
    {
      program;
      mechanism;
      machine_cycles;
      baseline_instrs;
      baseline_cpi;
      total_cycles;
      by_cost;
      by_label;
      base_by_label;
      top_sites;
    }
