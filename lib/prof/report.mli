(** Profile reports and the [prof-report] envelope.

    Three consumers of {!Profile.summary} data:
    - a single-run text breakdown for [tcejs --profile],
    - the differential views — checks-off vs checks-on ("where did the
      removed checks' cycles go?") and run-vs-run drift against
      [results/history] snapshots,
    - the roster-wide JSON suite the runner persists as
      [results/PROF_latest.json]. *)

type pair = {
  p_name : string;  (** workload name *)
  p_off : Profile.summary option;  (** mechanism-off side, when profiled *)
  p_on : Profile.summary option;  (** mechanism-on side, when profiled *)
}

val text_report : Profile.summary -> string
(** Human-readable single-run breakdown: totals, machine cycles by cost
    kind and by instruction label, baseline instructions by bytecode
    label, hottest sites. *)

val diff_table : pair list -> string
(** Checks-off vs checks-on: per-workload totals with the saving, then
    aggregate per-label machine-cycle deltas (positive = cycles the
    mechanism removed). *)

val label_deltas : pair list -> (string * int) list
(** Aggregate per-label machine-cycle deltas (off minus on) across all
    fully profiled pairs, sorted by label — positive means the mechanism
    removed those cycles. Used by the sign-correctness test. *)

val diff_runs : base:pair list -> cur:pair list -> string
(** Run-vs-run drift on the mechanism-on side: per-workload total-cycle
    drift plus the aggregate cost-kind mix shift. *)

val kind : string
(** The envelope kind, ["prof-report"]. *)

val pair_to_json : pair -> Tce_obs.Json.t
val pair_of_json : Tce_obs.Json.t -> (pair, string) result

val suite_doc :
  git_sha:string ->
  config_hash:string ->
  created_utc:string ->
  pair list ->
  Tce_obs.Json.t
(** The versioned [prof-report] document (provenance + per-workload
    pairs) written to [results/PROF_latest.json]. *)

val suite_of_json : Tce_obs.Json.t -> (pair list, string) result
