(** Deterministic simulated-time cycle-attribution profiler.

    The simulator's headline numbers (cycles, checks removed) say *how
    much* the mechanism saves; this module says *where the cycles go*. It
    attributes every simulated machine cycle to a (function x pc x cost
    kind) cell and every baseline instruction to a (function x bytecode pc)
    cell, using flat int arrays so the hot loop stays allocation-free
    (PR 5's invariant). Attribution is purely observational: it reads the
    machine's cycle clock and never writes simulator state, so simulated
    results are bit-identical with profiling on, off, or absent.

    {2 Watermark attribution}

    The machine's cycle clock is monotone non-decreasing. The profiler
    keeps a watermark [last]; at each cycle-advancing site the machine
    calls [take t cost now], attributing [now - last] to the current site
    under [cost] and advancing the watermark. Since the clock only moves
    at hooked sites, the sum over all cells equals the machine's total
    cycle count by construction — {!summarize} asserts exactly that
    (per-category reconciliation), so a missed hook is a loud failure,
    not a silently skewed profile.

    One profile instance serves exactly one engine/machine pair; the
    watermark is only meaningful against a single clock. *)

(** {1 Machine-side cost kinds} *)

val n_cost : int

val cost_dispatch : int
val cost_window : int
val cost_icache : int
val cost_storeq : int
val cost_branch : int
val cost_ccmiss : int
val cost_rt : int
val cost_call : int
val cost_deopt : int

val cost_name : int -> string

(** {1 Baseline extras — analytic instruction charges with no bytecode pc} *)

val n_extra : int
val extra_transition : int
val extra_elem_grow : int
val extra_deopt_transition : int
val extra_names : string array

(** {1 Profiles} *)

type acc
(** A flat per-function accumulator: machine accs hold [n_pcs * n_cost]
    cycle cells, baseline accs hold [n_pcs] instruction-count cells. *)

type t

val null : t
(** The shared disabled profile: [on null = false], never mutated (all
    mutators are guarded by [on] at their call sites), so it is safe to
    share across engines and domains. *)

val create : unit -> t
(** A fresh enabled profile for one engine. *)

val on : t -> bool
(** Whether attribution is live. Every hot-path call below must be guarded
    by this at the call site; the registration functions additionally
    enforce it. *)

val dummy_acc : acc
(** Safe placeholder for hot-loop locals when profiling is off; never
    registered, so cycles must not be attributed while it is current. *)

val register_opt : t -> id:int -> name:string -> labels:string array -> acc
(** Accumulator for an optimized (machine-code) function: [id] is the
    opt_id, [labels] gives one instruction label per pc (length = stream
    length). Keyed by [(id, Array.length labels)] so re-registration
    returns the existing cells — ids reused with a different length (e.g.
    recompilation in unit tests) get distinct accumulators rather than
    clobbering accumulated counts, keeping reconciliation exact. *)

val register_base : t -> id:int -> name:string -> labels:string array -> acc
(** Same, for a baseline (bytecode) function: [id] is the function id,
    labels are bytecode mnemonics. Shadow (inlined) bytecode shares the
    original's id with a different code length; the pair key keeps both. *)

val find_opt_acc : t -> id:int -> pcs:int -> acc option
val find_base_acc : t -> id:int -> pcs:int -> acc option

(** {1 Hot-path attribution} — call only when [on t] *)

val set_site : t -> acc -> int -> unit
(** [set_site t acc pc] makes (acc, pc) the current machine site. *)

val take : t -> int -> int -> unit
(** [take t cost now] attributes [now - watermark] cycles to the current
    machine site under cost kind [cost] and moves the watermark to [now].
    No-op when the clock has not advanced. *)

val set_base_site : t -> acc -> int -> unit
(** [set_base_site t acc pc] makes (acc, pc) the current baseline site. *)

val base_add : t -> int -> unit
(** Attribute [n] baseline instructions to the current baseline site. *)

val base_extra : t -> int -> int -> unit
(** [base_extra t kind n] attributes [n] baseline instructions to extras
    bucket [kind] (a charge with no bytecode pc, e.g. a hidden-class
    transition slow path). *)

(** {1 Reading} *)

val cost_totals_named : t -> (string * int) array
(** Running machine-cycle totals per cost kind, in kind order — cheap
    enough to sample from an observability tick. *)

val opt_cells_sum : t -> int
(** Sum of every machine-side cell (equals total machine cycles when all
    hooks are in place). *)

val base_cells_sum : t -> int
(** Sum of every baseline cell plus extras (equals the baseline
    instruction counter for a run without counter resets). *)

type site = { s_fn : string; s_pc : int; s_label : string; s_cycles : int }

type summary = {
  program : string;
  mechanism : bool;
  machine_cycles : int;
  baseline_instrs : int;
  baseline_cpi : float;
  total_cycles : float;
      (** [machine_cycles + baseline_instrs * baseline_cpi] — the same
          total the harness reports *)
  by_cost : (string * int) array;  (** machine cycles per cost kind *)
  by_label : (string * int) array;
      (** machine cycles per instruction label (check kinds, tags-untags,
          math, cc-op, other), descending *)
  base_by_label : (string * int) array;
      (** baseline instructions per bytecode mnemonic + named extras,
          descending *)
  top_sites : site list;  (** hottest (function, pc) machine sites *)
}

val summarize :
  t ->
  program:string ->
  mechanism:bool ->
  machine_cycles:int ->
  baseline_instrs:int ->
  baseline_cpi:float ->
  ?top:int ->
  unit ->
  summary
(** Build the per-run summary. Fails (with the program name and both
    numbers) if the machine-side cells do not sum exactly to
    [machine_cycles], or the baseline cells + extras do not sum exactly to
    [baseline_instrs] — the per-category reconciliation invariant.
    [baseline_instrs] must come from a run measured whole (no counter
    resets). *)

(** {1 Collapsed-stack flamegraph export} *)

val folded : ?root:string -> baseline_cpi:float -> t -> string
(** Collapsed-stack lines ([frame;frame;... count], one per cell) loadable
    by speedscope and inferno/flamegraph.pl. Machine frames are
    [optimized;fn;pcN:label;cost] with exact cycle counts; baseline frames
    are [baseline;fn;pcN:label] with instruction counts scaled by
    [baseline_cpi] (rounded per cell, so the folded baseline total may
    differ from the analytic product by rounding). [root] prefixes every
    line with an extra frame (e.g. ["richards;on"]) so multiple runs
    concatenate into one flamegraph. Deterministic: ordered by function
    id, pc, cost. *)

val parse_folded : string -> ((string list * int) list, string) result
(** Parse collapsed-stack lines back into (frames, count) rows; used by
    the round-trip test and the differential reporter. *)

(** {1 Summary JSON} *)

val summary_to_json : summary -> Tce_obs.Json.t
val summary_of_json : Tce_obs.Json.t -> (summary, string) result
