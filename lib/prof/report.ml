(** Profile reports: single-run text, differential (checks-off vs
    checks-on, run vs run), and the roster-wide [prof-report] envelope.
    See report.mli. *)

module J = Tce_obs.Json
module P = Profile

type pair = {
  p_name : string;
  p_off : P.summary option;
  p_on : P.summary option;
}

let pct part whole = if whole = 0. then 0. else 100. *. part /. whole

(* --- single-run text report --- *)

let text_report (s : P.summary) : string =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "profile: %s (mechanism %s)\n" s.P.program
    (if s.P.mechanism then "on" else "off");
  pf "  total %.0f cycles = %d machine + %d baseline instrs x %.2f cpi\n"
    s.P.total_cycles s.P.machine_cycles s.P.baseline_instrs s.P.baseline_cpi;
  pf "  machine cycles by cost kind:\n";
  Array.iter
    (fun (k, v) ->
      if v > 0 then
        pf "    %-10s %12d  %5.1f%%\n" k v
          (pct (float_of_int v) (float_of_int s.P.machine_cycles)))
    s.P.by_cost;
  pf "  machine cycles by instruction label:\n";
  Array.iter
    (fun (k, v) ->
      pf "    %-14s %12d  %5.1f%%\n" k v
        (pct (float_of_int v) (float_of_int s.P.machine_cycles)))
    s.P.by_label;
  pf "  baseline instructions by bytecode label:\n";
  Array.iter
    (fun (k, v) ->
      pf "    %-16s %12d  %5.1f%%\n" k v
        (pct (float_of_int v) (float_of_int s.P.baseline_instrs)))
    s.P.base_by_label;
  pf "  hottest machine sites:\n";
  List.iter
    (fun (st : P.site) ->
      pf "    %-24s pc%-5d %-14s %12d\n" st.P.s_fn st.P.s_pc st.P.s_label
        st.P.s_cycles)
    s.P.top_sites;
  Buffer.contents b

(* --- differential: checks-off vs checks-on --- *)

let tally_to_assoc a = Array.to_list a

(** Merge two label tallies into (label, off, on) rows ordered by
    descending absolute delta. *)
let merge_tallies off on =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k (v, 0)) (tally_to_assoc off);
  List.iter
    (fun (k, v) ->
      let o = try fst (Hashtbl.find tbl k) with Not_found -> 0 in
      Hashtbl.replace tbl k (o, v))
    (tally_to_assoc on);
  let rows = Hashtbl.fold (fun k (o, n) acc -> (k, o, n) :: acc) tbl [] in
  List.sort
    (fun (ka, oa, na) (kb, ob, nb) ->
      let da = abs (oa - na) and db = abs (ob - nb) in
      if da <> db then compare db da else compare ka kb)
    rows

(** Where did the removed checks' cycles go? For each workload with both
    sides profiled: totals off/on and the per-label machine-cycle deltas
    (positive = cycles the mechanism removed). *)
let diff_table (pairs : pair list) : string =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "%-24s %14s %14s %9s\n" "workload" "off cycles" "on cycles" "saved";
  let agg_off = Hashtbl.create 16 and agg_on = Hashtbl.create 16 in
  let bump tbl k v =
    Hashtbl.replace tbl k (v + try Hashtbl.find tbl k with Not_found -> 0)
  in
  let compared = ref 0 in
  List.iter
    (fun p ->
      match (p.p_off, p.p_on) with
      | Some off, Some on ->
        incr compared;
        pf "%-24s %14.0f %14.0f %+8.2f%%\n" p.p_name off.P.total_cycles
          on.P.total_cycles
          (pct (off.P.total_cycles -. on.P.total_cycles) off.P.total_cycles);
        Array.iter (fun (k, v) -> bump agg_off k v) off.P.by_label;
        Array.iter (fun (k, v) -> bump agg_on k v) on.P.by_label
      | _ -> pf "%-24s (missing a side)\n" p.p_name)
    pairs;
  if !compared > 0 then begin
    pf "\nmachine cycles by instruction label (off -> on, %d workloads):\n"
      !compared;
    pf "  %-14s %14s %14s %14s\n" "label" "off" "on" "removed";
    let off_rows =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) agg_off []
      |> List.sort compare |> Array.of_list
    in
    let on_rows =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) agg_on []
      |> List.sort compare |> Array.of_list
    in
    List.iter
      (fun (k, o, n) -> pf "  %-14s %14d %14d %+14d\n" k o n (o - n))
      (merge_tallies off_rows on_rows)
  end;
  Buffer.contents b

(** Per-label machine-cycle deltas (off - on) aggregated across all pairs:
    positive means the mechanism removed those cycles. Exposed for the
    sign-correctness test. *)
let label_deltas (pairs : pair list) : (string * int) list =
  let agg = Hashtbl.create 16 in
  let bump k v =
    Hashtbl.replace agg k (v + try Hashtbl.find agg k with Not_found -> 0)
  in
  List.iter
    (fun p ->
      match (p.p_off, p.p_on) with
      | Some off, Some on ->
        Array.iter (fun (k, v) -> bump k v) off.P.by_label;
        Array.iter (fun (k, v) -> bump k (-v)) on.P.by_label
      | _ -> ())
    pairs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) agg [] |> List.sort compare

(* --- differential: run vs run --- *)

(** Compare the mechanism-on profiles of two runs of the same roster
    (e.g. PROF_latest.json vs a results/history snapshot): per-workload
    total drift plus the cost-kind mix shifts behind it. *)
let diff_runs ~(base : pair list) ~(cur : pair list) : string =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let find name = List.find_opt (fun p -> p.p_name = name) cur in
  pf "%-24s %14s %14s %9s\n" "workload" "base cycles" "cur cycles" "drift";
  let agg_b = Hashtbl.create 16 and agg_c = Hashtbl.create 16 in
  let bump tbl k v =
    Hashtbl.replace tbl k (v + try Hashtbl.find tbl k with Not_found -> 0)
  in
  List.iter
    (fun bp ->
      match (bp.p_on, find bp.p_name) with
      | Some bs, Some { p_on = Some cs; _ } ->
        pf "%-24s %14.0f %14.0f %+8.2f%%\n" bp.p_name bs.P.total_cycles
          cs.P.total_cycles
          (pct (cs.P.total_cycles -. bs.P.total_cycles) bs.P.total_cycles);
        Array.iter (fun (k, v) -> bump agg_b k v) bs.P.by_cost;
        Array.iter (fun (k, v) -> bump agg_c k v) cs.P.by_cost
      | _ -> pf "%-24s (missing from current run)\n" bp.p_name)
    base;
  pf "\nmachine cycles by cost kind (base -> cur):\n";
  pf "  %-10s %14s %14s %14s\n" "cost" "base" "cur" "delta";
  let rows tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort compare |> Array.of_list
  in
  List.iter
    (fun (k, o, n) -> pf "  %-10s %14d %14d %+14d\n" k o n (n - o))
    (merge_tallies (rows agg_b) (rows agg_c));
  Buffer.contents b

(* --- JSON / envelope --- *)

let pair_to_json p =
  J.Obj
    (("name", J.Str p.p_name)
    :: (match p.p_off with
       | Some s -> [ ("off", P.summary_to_json s) ]
       | None -> [])
    @ match p.p_on with Some s -> [ ("on", P.summary_to_json s) ] | None -> [])

let ( let* ) = Result.bind

let pair_of_json j : (pair, string) result =
  let* p_name =
    match Option.bind (J.member "name" j) J.to_str with
    | Some s -> Ok s
    | None -> Error "pair: bad or missing field \"name\""
  in
  let side k =
    match J.member k j with
    | None -> Ok None
    | Some sj -> Result.map Option.some (P.summary_of_json sj)
  in
  let* p_off = side "off" in
  let* p_on = side "on" in
  Ok { p_name; p_off; p_on }

let kind = "prof-report"

let suite_doc ~git_sha ~config_hash ~created_utc (pairs : pair list) : J.t =
  Tce_obs.Export.document ~kind
    (J.Obj
       [
         ("git_sha", J.Str git_sha);
         ("config_hash", J.Str config_hash);
         ("created_utc", J.Str created_utc);
         ("workloads", J.List (List.map pair_to_json pairs));
       ])

let suite_of_json (j : J.t) : (pair list, string) result =
  let* k, data = Tce_obs.Export.open_document j in
  if k <> kind then Error (Printf.sprintf "expected kind %S, got %S" kind k)
  else
    match J.member "workloads" data with
    | Some (J.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | it :: rest ->
          let* p = pair_of_json it in
          go (p :: acc) rest
      in
      go [] items
    | _ -> Error "prof-report: bad or missing field \"workloads\""
