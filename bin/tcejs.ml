(** [tcejs] — run a MiniJS program under the two-tier engine.

    Usage: tcejs [run] FILE [--no-jit] [--no-mechanism] [--stats]
                 [--trace[=FILE]] [--trace-format=json|chrome]
                 [--metrics-json=FILE] [--obs-sample-cycles=N]
                 [--fault-spec=SPEC] [--fault-seed=N]
                 [--profile[=FILE]] [--profile-json=FILE]
           tcejs disasm FILE            (bytecode listing)
           tcejs opt-dump FILE FUNC     (optimized LIR of FUNC, after warm-up)
           tcejs classlist FILE         (Class List dump after the run)
           tcejs config                 (print the simulated core, Table 2)
           tcejs bench-check [--baseline FILE] [--tolerance PCT] [--jobs N]
                 [WORKLOAD ...]         (perf-regression gate) *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_term =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let no_jit = Arg.(value & flag & info [ "no-jit" ] ~doc:"Pure interpreter.") in
  let no_mech =
    Arg.(value & flag & info [ "no-mechanism" ] ~doc:"Disable the Class Cache mechanism.")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print execution statistics.") in
  let trace_file =
    Arg.(
      value
      & opt ~vopt:(Some "trace.json") (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Record engine events and write them to $(docv) (default trace.json).")
  in
  let trace_format =
    Arg.(
      value
      & opt (enum [ ("json", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
      & info [ "trace-format" ] ~docv:"FORMAT"
          ~doc:
            "Trace output format: $(b,json) (one event per line) or \
             $(b,chrome) (trace_event JSON loadable in Perfetto / \
             chrome://tracing).")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:"Write engine counters as versioned JSON to $(docv) (- = stdout).")
  in
  let sample_cycles =
    Arg.(
      value
      & opt int 0
      & info [ "obs-sample-cycles" ] ~docv:"N"
          ~doc:
            "Sample counter tracks (deopts, Class-Cache occupancy, heap \
             bytes) every $(docv) simulated cycles; 0 disables sampling.")
  in
  let fault_spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-spec" ] ~docv:"SPEC"
          ~doc:
            "Arm the deterministic fault injector with $(docv) (e.g. \
             $(b,lost-deopt:0.5,cc-evict:0.02); see lib/fault/README.md). \
             Fired faults and retire-path detections are reported on \
             stderr.")
  in
  let fault_seed =
    Arg.(
      value
      & opt int 1
      & info [ "fault-seed" ] ~docv:"N"
          ~doc:
            "Seed of the fault injector's PRNG; a run is replayable from \
             (seed, spec) alone.")
  in
  let explain =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "explain" ] ~docv:"FILE"
          ~doc:
            "Record check attribution and explain every kept check and \
             deopt causal chain. Without $(docv) (or with $(b,-)) the text \
             report goes to stdout; with $(docv) a versioned \
             $(b,attr-report) JSON document is written instead.")
  in
  let profile =
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:
            "Attribute every simulated cycle to a (function, pc, cost) \
             site. Without $(docv) (or with $(b,-)) a text breakdown — \
             totals, cycles by cost kind and instruction label, hottest \
             sites — goes to stdout; with $(docv), collapsed-stack \
             flamegraph lines are written instead (load them in speedscope \
             or inferno).")
  in
  let profile_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-json" ] ~docv:"FILE"
          ~doc:
            "Write the cycle-attribution profile as a versioned \
             $(b,prof-report) JSON document to $(docv) (- = stdout). \
             Implies profiling; combine with $(b,--profile) for the text \
             or folded view of the same run.")
  in
  let run file no_jit no_mech stats trace_file trace_format metrics_json
      sample_cycles fault_spec fault_seed explain profile profile_json =
    let src = read_file file in
    let trace =
      match trace_file with
      | Some _ -> Tce_obs.Trace.create ()
      | None -> Tce_obs.Trace.null
    in
    let attr =
      match explain with
      | Some _ -> Tce_attr.Ledger.create ()
      | None -> Tce_attr.Ledger.null
    in
    let fault =
      match fault_spec with
      | None -> Tce_fault.Injector.null
      | Some s -> (
        match Tce_fault.Spec.parse s with
        | Ok spec -> Tce_fault.Injector.create ~seed:fault_seed spec
        | Error e ->
          Printf.eprintf "bad --fault-spec: %s\n" e;
          exit 2)
    in
    let prof =
      if profile <> None || profile_json <> None then
        Tce_prof.Profile.create ()
      else Tce_prof.Profile.null
    in
    let config =
      {
        Tce_engine.Engine.default_config with
        jit = not no_jit;
        mechanism = not no_mech;
        trace;
        obs_sample_cycles = sample_cycles;
        fault;
        attr;
        prof;
      }
    in
    let t = Tce_engine.Engine.of_source ~config src in
    (try ignore (Tce_engine.Engine.run_main t) with
    | Tce_engine.Engine.Engine_error msg | Tce_engine.Runtime.Guest_error msg ->
      Printf.eprintf "runtime error: %s\n" msg;
      exit 1
    | Tce_minijs.Parser.Error (msg, pos) ->
      Printf.eprintf "parse error at %d:%d: %s\n" pos.Tce_minijs.Ast.line
        pos.Tce_minijs.Ast.col msg;
      exit 1);
    print_string (Tce_engine.Engine.output t);
    (match trace_file with
    | Some path ->
      Tce_obs.Sink.write_file ~path
        (Tce_obs.Sink.render ~format:trace_format
           ~counters:(Tce_telem.Track.chrome_counters t.Tce_engine.Engine.snap)
           trace)
    | None -> ());
    (match metrics_json with
    | Some path ->
      Tce_obs.Export.to_file ~path (Tce_metrics.Export.engine_document t)
    | None -> ());
    (match explain with
    | None -> ()
    | Some dest ->
      let c = t.Tce_engine.Engine.counters in
      let checks_executed =
        List.map
          (fun k ->
            ( Tce_jit.Categories.check_kind_name k,
              c.Tce_machine.Counters.by_check_kind.(Tce_jit.Categories
                                                   .check_kind_index k + 1) ))
          Tce_jit.Categories.all_check_kinds
      in
      let cc_occupancy = Tce_core.Class_cache.set_occupancy t.Tce_engine.Engine.cc in
      let cc_conflicts = Tce_core.Class_cache.set_conflicts t.Tce_engine.Engine.cc in
      let program = Filename.basename file in
      if dest = "-" then
        print_string
          (Tce_attr.Aggregate.explain_text ~program ~checks_executed
             ~cc_occupancy ~cc_conflicts attr)
      else
        Tce_obs.Export.to_file ~path:dest
          (Tce_attr.Aggregate.report_json ~program ~checks_executed
             ~cc_occupancy ~cc_conflicts attr));
    (if Tce_prof.Profile.on prof then begin
       let cpi =
         config.Tce_engine.Engine.mach_cfg.Tce_machine.Config.baseline_cpi
       in
       let s =
         Tce_prof.Profile.summarize prof ~program:(Filename.basename file)
           ~mechanism:(not no_mech)
           ~machine_cycles:(Tce_engine.Engine.opt_cycles t)
           ~baseline_instrs:
             t.Tce_engine.Engine.counters.Tce_machine.Counters.baseline_instrs
           ~baseline_cpi:cpi ()
       in
       (match profile with
       | None -> ()
       | Some "-" -> print_string (Tce_prof.Report.text_report s)
       | Some path ->
         let oc = open_out path in
         output_string oc (Tce_prof.Profile.folded ~baseline_cpi:cpi prof);
         close_out oc);
       match profile_json with
       | None -> ()
       | Some path ->
         let p =
           {
             Tce_prof.Report.p_name = Filename.basename file;
             p_off = (if no_mech then Some s else None);
             p_on = (if no_mech then None else Some s);
           }
         in
         Tce_obs.Export.to_file ~path
           (Tce_prof.Report.suite_doc
              ~git_sha:(Tce_runner.Store.git_sha ())
              ~config_hash:(Tce_runner.Store.config_hash ~config ())
              ~created_utc:(Tce_runner.Store.timestamp_utc ())
              [ p ])
     end);
    if Tce_fault.Injector.armed fault then
      Printf.eprintf "faults: %s\n" (Tce_fault.Injector.summary fault);
    if stats then begin
      let c = t.Tce_engine.Engine.counters in
      Printf.printf "--- stats ---\n";
      Printf.printf "optimized instructions: %d\n"
        (Tce_machine.Counters.opt_instrs c);
      List.iter
        (fun i ->
          let cat = Tce_jit.Categories.of_index i in
          Printf.printf "  %-22s %d\n" (Tce_jit.Categories.name cat)
            (Tce_machine.Counters.cat c cat))
        [ 0; 1; 2; 3; 4 ];
      Printf.printf "baseline instructions:  %d\n"
        c.Tce_machine.Counters.baseline_instrs;
      Printf.printf "optimized cycles:       %d\n" (Tce_engine.Engine.opt_cycles t);
      Printf.printf "deopts: %d (cc exceptions: %d), tier-ups: %d\n"
        c.Tce_machine.Counters.deopts c.Tce_machine.Counters.cc_exception_deopts
        c.Tce_machine.Counters.tierups;
      Printf.printf "class cache: %d accesses, hit rate %.4f%%\n"
        t.Tce_engine.Engine.cc.Tce_core.Class_cache.stats.accesses
        (100.0 *. Tce_core.Class_cache.hit_rate t.Tce_engine.Engine.cc);
      Printf.printf "hidden classes: %d\n"
        (Tce_vm.Hidden_class.Registry.class_count
           t.Tce_engine.Engine.heap.Tce_vm.Heap.reg)
    end
  in
  Term.(
    const run $ file $ no_jit $ no_mech $ stats $ trace_file $ trace_format
    $ metrics_json $ sample_cycles $ fault_spec $ fault_seed $ explain
    $ profile $ profile_json)

let run_cmd = Cmd.v (Cmd.info "run" ~doc:"Run a MiniJS program.") run_term

let disasm_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let disasm file =
    let prog = Tce_jit.Bc_compile.compile_source (read_file file) in
    Array.iter
      (fun fn -> Fmt.pr "%a@." Tce_jit.Bytecode.pp_func fn)
      prog.Tce_jit.Bytecode.funcs
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Print the bytecode of a program.")
    Term.(const disasm $ file)

(* Run a program to a warm state: main once, then bench() (when present)
   ten times, so hot functions are optimized and profiles populated. *)
let warm_engine ?(config = Tce_engine.Engine.default_config) file =
  let t = Tce_engine.Engine.of_source ~config (read_file file) in
  Tce_engine.Engine.set_measuring t false;
  ignore (Tce_engine.Engine.run_main t);
  (match Tce_jit.Bytecode.find_func t.Tce_engine.Engine.prog "bench" with
  | Some _ ->
    for _ = 1 to 10 do
      ignore (Tce_engine.Engine.call_by_name t "bench" [||])
    done
  | None -> ());
  t

let opt_dump_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let fname = Arg.(required & pos 1 (some string) None & info [] ~docv:"FUNCTION") in
  let no_mech =
    Arg.(value & flag & info [ "no-mechanism" ] ~doc:"Disable the Class Cache mechanism.")
  in
  let dump file fname no_mech =
    let config =
      { Tce_engine.Engine.default_config with mechanism = not no_mech }
    in
    let t = warm_engine ~config file in
    match Tce_jit.Bytecode.find_func t.Tce_engine.Engine.prog fname with
    | None ->
      Printf.eprintf "no such function: %s\n" fname;
      exit 1
    | Some fn -> (
      match fn.Tce_jit.Bytecode.opt with
      | Some code -> Fmt.pr "%a@." Tce_jit.Lir.pp_func code
      | None ->
        Printf.eprintf
          "%s was not optimized (not hot, or optimization disabled)\n" fname;
        exit 1)
  in
  Cmd.v
    (Cmd.info "opt-dump"
       ~doc:"Print the optimized LIR of a function (after a warm-up run).")
    Term.(const dump $ file $ fname $ no_mech)

let classlist_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let show file =
    let t = warm_engine file in
    let reg = t.Tce_engine.Engine.heap.Tce_vm.Heap.reg in
    let class_name id =
      if id = Tce_vm.Layout.smi_classid then "SMI"
      else
        match Tce_vm.Hidden_class.Registry.find reg id with
        | Some c -> c.Tce_vm.Hidden_class.name
        | None -> Printf.sprintf "?%d" id
    in
    let fn_name oid =
      match Hashtbl.find_opt t.Tce_engine.Engine.opt_table oid with
      | Some code -> code.Tce_jit.Lir.name
      | None -> Printf.sprintf "opt%d" oid
    in
    List.iter
      (fun (cid, line, e) ->
        Fmt.pr "%a@."
          (Tce_core.Class_list.pp_entry ~class_name ~fn_name)
          (cid, line, e))
      (Tce_core.Class_list.dump t.Tce_engine.Engine.cl)
  in
  Cmd.v
    (Cmd.info "classlist"
       ~doc:"Dump the live Class List after running a program (Table 1 format).")
    Term.(const show $ file)

let config_cmd =
  let show () = Fmt.pr "%a" Tce_machine.Config.pp Tce_machine.Config.default in
  Cmd.v (Cmd.info "config" ~doc:"Print the simulated core configuration (Table 2).")
    Term.(const show $ const ())

let bench_check_cmd =
  let baseline =
    Arg.(
      value
      & opt string Tce_runner.Store.baseline_path
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Stored baseline run to compare against.")
  in
  let tolerance =
    Arg.(
      value
      & opt float Tce_runner.Gate.default_tolerance_pct
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:
            "Allowed degradation before the gate fails: simulated-cycle \
             growth in percent, check-removal drop in points.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Tce_runner.Runner.default_jobs ())
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Domains to fan workloads out across (1 = serial).")
  in
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"WORKLOAD"
          ~doc:"Restrict the comparison to these baseline workloads.")
  in
  let check baseline tolerance jobs names =
    exit
      (Tce_runner.Gate.run_gate ~baseline_path:baseline ~tolerance_pct:tolerance
         ~jobs ~names ())
  in
  Cmd.v
    (Cmd.info "bench-check"
       ~doc:
         "Re-run the baseline's benchmark roster on parallel domains and \
          exit non-zero when simulated cycles or check-removal rates \
          regress beyond tolerance.")
    Term.(const check $ baseline $ tolerance $ jobs $ names)

let sweep_cmd =
  let spec =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC"
          ~doc:
            "Sweep spec: space-separated axis clauses over $(b,cc.entries), \
             $(b,cc.ways) and $(b,cl.size), e.g. \"cc.entries=32,64,128,256 \
             cc.ways=1,2,4 cl.size=4,8\". An absent axis sweeps only its \
             paper-default value.")
  in
  let names =
    Arg.(
      value & pos_right 0 string []
      & info [] ~docv:"WORKLOAD"
          ~doc:
            "Workloads to sweep (default: the paper's selected roster).")
  in
  let jobs =
    Arg.(
      value
      & opt int (Tce_runner.Runner.default_jobs ())
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Domains to fan cells out across (1 = serial).")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Simulate every cell even when the content-addressed cell cache \
             (results/cache/) already holds its row.")
  in
  let out =
    Arg.(
      value
      & opt string Tce_runner.Store.sweep_latest_path
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the sweep document.")
  in
  let sweep spec names jobs no_cache out =
    match Tce_runner.Sweep.parse_spec spec with
    | Error e ->
      Printf.eprintf "bad sweep spec: %s\n" e;
      exit 2
    | Ok axes ->
      let ws =
        if names = [] then Tce_workloads.Workloads.selected
        else
          List.map
            (fun name ->
              match Tce_workloads.Workloads.by_name name with
              | Some w -> w
              | None ->
                Printf.eprintf "unknown workload %s\n" name;
                exit 2)
            names
      in
      let cache = if no_cache then None else Some (Tce_runner.Cache.create ()) in
      let t = Tce_runner.Sweep.run ?cache ~jobs ~axes ws in
      (match cache with
      | Some c ->
        Tce_runner.Cache.print_stats (Tce_runner.Cache.stats c);
        ignore (Tce_runner.Cache.prune ~dir:(Tce_runner.Cache.dir c) ())
      | None -> ());
      print_string (Tce_runner.Sweep.report t);
      ignore (Tce_runner.Sweep.save ~latest:out t);
      Printf.printf "wrote %s\n" out;
      exit
        (match Tce_runner.Sweep.baseline_check t with
        | Ok _ -> 0
        | Error _ -> 1)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Explore the Class Cache / Class List design space: run every \
          (geometry, workload) cell through the cell cache and report the \
          Pareto frontier over simulated cycles, check removal and \
          geometry cost.")
    Term.(const sweep $ spec $ names $ jobs $ no_cache $ out)

let () =
  let info = Cmd.info "tcejs" ~doc:"MiniJS engine with HW-assisted type-check elision" in
  exit
    (Cmd.eval
       (Cmd.group ~default:run_term info
          [
            run_cmd; disasm_cmd; opt_dump_cmd; classlist_cmd; config_cmd;
            bench_check_cmd; sweep_cmd;
          ]))
