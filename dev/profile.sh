#!/bin/sh
# Profile the simulator itself (host wall clock, not simulated cycles).
#
# Usage:
#   dev/profile.sh [WORKLOAD ...]
#
# Runs the named workloads (default: a representative slow trio) through
# the benchmark runner serially and reports where the host time goes:
#
#   * with Linux `perf` installed: `perf record` + `perf report` over the
#     run, giving a per-function profile of the dispatch loop;
#   * without `perf` (containers, macOS): falls back to the runner's own
#     self-timing table (`--bench --time`), which attributes wall clock
#     per workload and per mechanism side — coarse, but enough to spot
#     which workload regressed before bisecting with smaller rosters.
#
# POSIX sh; run from the repo root. Results land under /tmp/tce-profile.
set -eu

workloads="${*:-splay mandreel typescript-ray}"
out=/tmp/tce-profile
mkdir -p "$out"

dune build bench/main.exe

exe=_build/default/bench/main.exe

if command -v perf >/dev/null 2>&1; then
    echo "profiling with perf: $workloads"
    # shellcheck disable=SC2086  # workload names are intentionally split
    perf record -g -o "$out/perf.data" -- "$exe" --bench --jobs 1 \
        --history "" --out "$out/profile_bench.json" $workloads
    perf report -i "$out/perf.data" --stdio | head -60
    echo "full profile: perf report -i $out/perf.data"
else
    echo "perf not found; falling back to the runner's self-timing table"
    # shellcheck disable=SC2086
    "$exe" --bench --time --jobs 1 --history "" \
        --out "$out/profile_bench.json" $workloads | tee "$out/time_table.txt"
    echo "table saved to $out/time_table.txt"
fi
