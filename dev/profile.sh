#!/bin/sh
# Profile the simulator itself (host wall clock, not simulated cycles).
#
# Usage:
#   dev/profile.sh [--shards N] [WORKLOAD ...]
#
# Runs the named workloads (default: a representative slow trio) through
# the benchmark runner and reports where the host time goes:
#
#   * with Linux `perf` installed: `perf record` + `perf report` over the
#     run, giving a per-function profile of the dispatch loop;
#   * without `perf` (containers, macOS): falls back to the runner's own
#     self-timing table (`--bench --time`), which attributes wall clock
#     per workload and per mechanism side — coarse, but enough to spot
#     which workload regressed before bisecting with smaller rosters.
#     The same table is saved as a versioned time-report envelope at
#     results/bench_time.json (older releases wrote ./bench_time.json).
#
# --shards N runs the roster across N worker processes (the CI
# configuration). Under perf, -g follows the forked workers, so the
# report covers the whole worker fleet; the fallback prints the parent's
# merged summary (per-workload wall columns are measured in the workers
# and still attributed per pair).
#
# POSIX sh; run from the repo root. Results land under /tmp/tce-profile.
set -eu

shards=1
case "${1:-}" in
--shards)
    shards="${2:?--shards needs a value}"
    shift 2
    ;;
--shards=*)
    shards="${1#--shards=}"
    shift
    ;;
esac
case "$shards" in
'' | *[!0-9]*)
    echo "profile.sh: --shards expects a positive integer, got '$shards'" >&2
    exit 2
    ;;
esac

workloads="${*:-splay mandreel typescript-ray}"
out=/tmp/tce-profile
mkdir -p "$out"

dune build bench/main.exe

exe=_build/default/bench/main.exe

if [ "$shards" -gt 1 ]; then
    mode="--shards $shards"
else
    mode="--jobs 1"
fi

if command -v perf >/dev/null 2>&1; then
    echo "profiling with perf ($mode): $workloads"
    # shellcheck disable=SC2086  # workload names/mode are intentionally split
    perf record -g -o "$out/perf.data" -- "$exe" --bench $mode \
        --history "" --out "$out/profile_bench.json" $workloads
    perf report -i "$out/perf.data" --stdio | head -60
    echo "full profile: perf report -i $out/perf.data"
else
    echo "perf not found; falling back to the runner's self-timing table ($mode)"
    # shellcheck disable=SC2086
    "$exe" --bench --time $mode --history "" \
        --out "$out/profile_bench.json" $workloads | tee "$out/time_table.txt"
    echo "table saved to $out/time_table.txt"
fi
