(* Dump the live Class List of a workload (after a warm run) as a versioned
   Tce_obs.Export JSON document on stdout. *)
module E = Tce_engine.Engine
module J = Tce_obs.Json
module BM = Tce_support.Bytemap

let () =
  let wname = Sys.argv.(1) in
  let w = Option.get (Tce_workloads.Workloads.by_name wname) in
  let t = E.of_source w.Tce_workloads.Workload.source in
  E.set_measuring t false;
  ignore (E.run_main t);
  for _ = 1 to 9 do ignore (E.call_by_name t "bench" [||]) done;
  let reg = t.E.heap.Tce_vm.Heap.reg in
  let class_name id =
    if id = 0xff then "SMI"
    else
      match Tce_vm.Hidden_class.Registry.find reg id with
      | Some c -> c.Tce_vm.Hidden_class.name
      | None -> Printf.sprintf "?%d" id
  in
  let entry_json (cid, line, (e : Tce_core.Class_list.entry)) =
    J.Obj
      [
        ("classid", J.Int cid);
        ("class", J.Str (class_name cid));
        ("line", J.Int line);
        ("init_map", J.Str (BM.to_bits e.Tce_core.Class_list.init_map));
        ("valid_map", J.Str (BM.to_bits e.Tce_core.Class_list.valid_map));
        ("speculate_map", J.Str (BM.to_bits e.Tce_core.Class_list.speculate_map));
        ( "props",
          J.List (Array.to_list (Array.map (fun p -> J.Int p) e.Tce_core.Class_list.props)) );
        ( "func_lists",
          J.List
            (Array.to_list
               (Array.map
                  (fun l -> J.List (List.map (fun oid -> J.Int oid) l))
                  e.Tce_core.Class_list.func_lists)) );
      ]
  in
  Tce_obs.Export.to_file ~path:"-"
    (Tce_obs.Export.document ~kind:"class-list"
       (J.Obj
          [
            ("workload", J.Str wname);
            ( "entries",
              J.List (List.map entry_json (Tce_core.Class_list.dump t.E.cl)) );
          ]))
