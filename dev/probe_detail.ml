(* Mechanism-off vs mechanism-on detail for one workload, as a versioned
   Tce_obs.Export JSON document on stdout (every Harness.result field). *)
module J = Tce_obs.Json

let () =
  let name = Sys.argv.(1) in
  let w = Option.get (Tce_workloads.Workloads.by_name name) in
  let off, on = Tce_metrics.Harness.run_pair w in
  Tce_obs.Export.to_file ~path:"-"
    (Tce_obs.Export.document ~kind:"probe-detail"
       (J.Obj
          [
            ("workload", J.Str name);
            ("off", Tce_metrics.Export.result_json off);
            ("on", Tce_metrics.Export.result_json on);
          ]))
