(* Per-workload speedup sweep (mechanism off vs on), as a versioned
   Tce_obs.Export JSON document on stdout. With no arguments, runs the
   paper's ">1% check overhead" selected subset. *)
module J = Tce_obs.Json

let () =
  let open Tce_metrics.Harness in
  let names =
    match Array.to_list Sys.argv with _ :: rest when rest <> [] -> rest | _ -> []
  in
  let ws =
    if names = [] then Tce_workloads.Workloads.selected
    else List.filter_map Tce_workloads.Workloads.by_name names
  in
  let rows =
    List.map
      (fun w ->
        match run_pair w with
        | off, on ->
          let opt_imp =
            Tce_support.Stats.improvement
              ~base:(float_of_int off.opt_cycles)
              ~opt:(float_of_int on.opt_cycles)
          in
          J.Obj
            [
              ("workload", J.Str w.Tce_workloads.Workload.name);
              ("improvement_pct", J.Float opt_imp);
              ("off", Tce_metrics.Export.result_json off);
              ("on", Tce_metrics.Export.result_json on);
            ]
        | exception e ->
          J.Obj
            [
              ("workload", J.Str w.Tce_workloads.Workload.name);
              ("error", J.Str (Printexc.to_string e));
            ])
      ws
  in
  Tce_obs.Export.to_file ~path:"-"
    (Tce_obs.Export.document ~kind:"probe-speedup"
       (J.Obj [ ("rows", J.List rows) ]))
