#!/bin/sh
# End-to-end observability check (wired into `dune runtest` via dev/dune):
# run one traced, deopting benchmark, then validate every JSON artifact
# against its schema.
#
# CI-portable: POSIX sh, no absolute paths, works from a clean checkout
# (dune passes the executables relative to the action's cwd). `pipefail`
# is enabled when the shell supports it; the guard keeps strict POSIX
# shells working.
#
# Usage: check_obs.sh TCEJS_EXE VALIDATE_EXE EXAMPLE_JS
set -eu
if (set -o pipefail) 2>/dev/null; then set -o pipefail; fi

[ $# -eq 3 ] || { echo "usage: check_obs.sh TCEJS_EXE VALIDATE_EXE EXAMPLE_JS" >&2; exit 2; }

# dune passes exe paths relative to the action's cwd; a bare name needs
# an explicit ./ for the shell to exec it
with_dir() { case "$1" in */*) printf '%s' "$1" ;; *) printf './%s' "$1" ;; esac; }
TCEJS=$(with_dir "$1")
VALIDATE=$(with_dir "$2")
EXAMPLE=$3
TMP=$(mktemp -d "${TMPDIR:-/tmp}/check_obs.XXXXXX")
trap 'rm -rf "$TMP"' EXIT

# Chrome trace (also exercises `run` as the default subcommand) + metrics.
"$TCEJS" --trace="$TMP/trace.json" --trace-format=chrome \
  --obs-sample-cycles=4000 --metrics-json="$TMP/metrics.json" \
  "$EXAMPLE" > "$TMP/out.txt"
"$VALIDATE" chrome "$TMP/trace.json" require-deopt
"$VALIDATE" export "$TMP/metrics.json" run-stats

# JSON-lines trace of the same program.
"$TCEJS" run --trace="$TMP/trace.jsonl" --trace-format=json "$EXAMPLE" \
  > /dev/null
"$VALIDATE" jsonl "$TMP/trace.jsonl"

# Attribution report of the same (deopting) program.
"$TCEJS" run --explain="$TMP/attr.json" "$EXAMPLE" > /dev/null
"$VALIDATE" export "$TMP/attr.json" attr-report

echo "check_obs: OK"
