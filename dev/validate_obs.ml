(* Validate observability JSON artifacts.

   Usage:
     validate_obs chrome FILE [require-deopt]
       - FILE parses as JSON, has a traceEvents array, and every event
         carries name/ph/pid; with [require-deopt], at least one tierup
         and one deopt instant (with a non-empty reason) must be present.
     validate_obs export FILE [KIND]
       - FILE parses as a versioned Tce_obs.Export document (matching
         schema_version); with KIND, the document kind must match.
     validate_obs jsonl FILE
       - every line of FILE parses as a JSON object with at/event keys.
     validate_obs openmetrics FILE
       - FILE parses under the strict Tce_telem OpenMetrics parser
         (TYPE-before-samples, suffix rules, cumulative histogram
         buckets, terminal # EOF). *)

module J = Tce_obs.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("validate_obs: " ^ m); exit 1) fmt

let read_file path =
  let ic = try open_in_bin path with Sys_error e -> fail "%s" e in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse path =
  match J.of_string (read_file path) with
  | Ok j -> j
  | Error e -> fail "%s: JSON parse error: %s" path e

let check_chrome path require_deopt =
  let j = parse path in
  let events =
    match J.member "traceEvents" j with
    | Some (J.List l) -> l
    | _ -> fail "%s: no traceEvents array" path
  in
  List.iter
    (fun e ->
      let has k = J.member k e <> None in
      if not (has "name" && has "ph" && has "pid") then
        fail "%s: event missing name/ph/pid: %s" path (J.to_string e))
    events;
  let cat_is c e = match J.member "cat" e with Some (J.Str s) -> s = c | _ -> false in
  let tierups = List.filter (cat_is "tierup") events in
  let deopts = List.filter (cat_is "deopt") events in
  if require_deopt then begin
    if tierups = [] then fail "%s: no tierup events" path;
    (match deopts with
    | [] -> fail "%s: no deopt events" path
    | _ ->
      List.iter
        (fun e ->
          match J.member "args" e with
          | Some args -> (
            match J.member "reason" args with
            | Some (J.Str r) when String.length r > 0 -> ()
            | _ -> fail "%s: deopt event with empty reason" path)
          | None -> fail "%s: deopt event without args" path)
        deopts)
  end;
  Printf.printf "validate_obs: %s OK (%d events, %d tierups, %d deopts)\n" path
    (List.length events) (List.length tierups) (List.length deopts)

let check_export path kind =
  let j = parse path in
  match Tce_obs.Export.open_document j with
  | Error e -> fail "%s: %s" path e
  | Ok (k, _data) ->
    (match kind with
    | Some want when want <> k -> fail "%s: kind %s, expected %s" path k want
    | _ -> ());
    Printf.printf "validate_obs: %s OK (kind %s, schema v%d)\n" path k
      Tce_obs.Export.schema_version

let check_jsonl path =
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")
  in
  List.iteri
    (fun i l ->
      match J.of_string l with
      | Ok j ->
        if J.member "at" j = None || J.member "event" j = None then
          fail "%s:%d: record missing at/event" path (i + 1)
      | Error e -> fail "%s:%d: %s" path (i + 1) e)
    lines;
  Printf.printf "validate_obs: %s OK (%d records)\n" path (List.length lines)

let check_openmetrics path =
  match Tce_telem.Expo.Parse.parse_result (read_file path) with
  | Error e -> fail "%s: %s" path e
  | Ok fams ->
    let points =
      List.fold_left
        (fun n (f : Tce_telem.Expo.Parse.family) ->
          n + List.length f.Tce_telem.Expo.Parse.p_points)
        0 fams
    in
    Printf.printf "validate_obs: %s OK (%d metric families, %d samples)\n" path
      (List.length fams) points

let () =
  match Array.to_list Sys.argv with
  | _ :: "chrome" :: path :: rest -> check_chrome path (rest = [ "require-deopt" ])
  | _ :: "export" :: path :: rest ->
    check_export path (match rest with k :: _ -> Some k | [] -> None)
  | [ _; "jsonl"; path ] -> check_jsonl path
  | [ _; "openmetrics"; path ] -> check_openmetrics path
  | _ -> fail "usage: validate_obs (chrome|export|jsonl|openmetrics) FILE [...]"
