(* Microarchitectural detail (branch predictor, caches, TLB) of the
   measured iteration, mechanism off vs on, as a versioned Tce_obs.Export
   JSON document on stdout. *)
module E = Tce_engine.Engine
module J = Tce_obs.Json

let run mech =
  let w = Option.get (Tce_workloads.Workloads.by_name Sys.argv.(1)) in
  let config = { E.default_config with E.mechanism = mech } in
  let t = E.of_source ~config w.Tce_workloads.Workload.source in
  E.set_measuring t false;
  ignore (E.run_main t);
  for _ = 1 to 9 do ignore (E.call_by_name t "bench" [||]) done;
  E.reset_measurement t;
  let c0 = E.opt_cycles t in
  E.set_measuring t true;
  ignore (E.call_by_name t "bench" [||]);
  let m = t.E.mach in
  J.Obj
    [
      ("mechanism", J.Bool mech);
      ("cycles", J.Int (E.opt_cycles t - c0));
      ( "branches",
        J.Int m.Tce_machine.Machine.bp.Tce_machine.Branch.stats.branches );
      ( "mispredicts",
        J.Int m.Tce_machine.Machine.bp.Tce_machine.Branch.stats.mispredicts );
      ( "l1d_accesses",
        J.Int m.Tce_machine.Machine.l1d.Tce_machine.Cache.stats.accesses );
      ( "l1d_misses",
        J.Int m.Tce_machine.Machine.l1d.Tce_machine.Cache.stats.misses );
      ( "l2_misses",
        J.Int m.Tce_machine.Machine.l2.Tce_machine.Cache.stats.misses );
      ( "dtlb_misses",
        J.Int m.Tce_machine.Machine.dtlb.Tce_machine.Tlb.stats.misses );
    ]

let () =
  Tce_obs.Export.to_file ~path:"-"
    (Tce_obs.Export.document ~kind:"probe-microarch"
       (J.Obj
          [
            ("workload", J.Str Sys.argv.(1));
            ("runs", J.List [ run false; run true ]);
          ]))
