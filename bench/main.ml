(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (see DESIGN.md §4 for the per-experiment index), plus the
    ablation studies and Bechamel micro-benchmarks of the simulator itself.

    Usage:
      dune exec bench/main.exe             (everything)
      dune exec bench/main.exe -- fig1 fig8 table1 ...
      dune exec bench/main.exe -- bechamel
      dune exec bench/main.exe -- --metrics-json FILE [WORKLOAD ...]
        (run the named workloads — default: the built-in smoke workload —
         and write every Harness.result field as versioned JSON)
      dune exec bench/main.exe -- --bench [--jobs N] [--out FILE]
          [--history DIR] [--suite all|selected|octane|sunspider|kraken]
          [--time] [--profile[=FILE]] [--shards N | --shard K/N]
          [--deterministic] [WORKLOAD ...]
        (parallel suite run through Tce_runner; appends to the result
         store: BENCH_latest.json + results/history/. --time additionally
         prints the host wall clock per workload, slowest first — how fast
         the simulator itself runs, not a simulated number — and writes
         the same table as bench_time.json. --profile re-runs the roster
         under the cycle-attribution profiler: prints the checks-off vs
         checks-on differential, writes PROF_latest.json (+ a history
         copy) and collapsed-stack flamegraph lines to FILE, default
         bench_profile.folded — load it in speedscope or inferno.
         --shards N runs N supervised worker processes over the roster
         and merges their rows into one run, bit-identical to a serial
         run even when workers crash or hang: dead workers are respawned
         over their missing cells (--supervise-timeout SECONDS scales the
         per-cell progress deadline, --max-retries N bounds how often one
         cell may kill its worker before it is quarantined; --strict
         turns any quarantine into exit 1). Accepted rows are journaled
         to results/journal/bench.jsonl; --resume FILE replays a previous
         journal and runs only the remainder. --chaos-worker MODE
         [--chaos-seed N] arms one seeded worker fault (crash-after /
         sigkill-after / hang-after / garbage-after / truncate-after /
         poison) to drill the supervisor. --shard K/N and
         --worker-indices i,j,k are the worker sides (row envelopes on
         stdout, spawned by the parent — not meant for direct use).
         --deterministic strips the host-dependent fields (timestamps,
         wall clocks, jobs/shards) from the saved run so two runs of the
         same tree compare with cmp(1))
      dune exec bench/main.exe -- --sweep "cc.entries=32,64,128,256 cc.ways=1,2,4 cl.size=4,8"
          [--jobs N | --shards N] [--out FILE] [--csv FILE] [--dir DIR]
          [--resume FILE] [--deterministic] [--suite ...] [WORKLOAD ...]
        (design-space explorer: expand the geometry grid — Class Cache
         entries/ways, Class List size; an absent axis sweeps only its
         paper default — run every (point x workload) cell and report the
         Pareto frontier over simulated cycles, check removal and a
         geometry cost proxy. Writes SWEEP_latest.json + .csv and an
         immutable copy under results/sweeps/. Exits non-zero when the
         default geometry's rows are not bit-identical to the committed
         baseline)
      Any runner-backed mode (--bench / --faults / --check / --sweep)
      consults the content-addressed cell cache (results/cache/) by
      default: a repeated identical run performs zero simulations, with
      rows asserted byte-identical to fresh ones. --no-cache disables
      it, --cache-dir DIR relocates it. They also take
      the fleet-telemetry flags: --telemetry-out FILE (periodic
      OpenMetrics snapshots), --serve-metrics PORT (HTTP scrape endpoint,
      0 = ephemeral; the bound port is announced on stderr) and
      --status-board (live per-shard board on stderr, plain log lines
      when stderr is not a TTY). All of them off leaves every run
      byte-identical to a build without telemetry.
      dune exec bench/main.exe -- --trends [N]
        (cross-run trend report over the last N archived runs, default
         20: per-workload time series from results/history/ and fault
         campaigns from results/campaigns/, MAD anomaly flagging, text
         report to stdout plus results/trends/trends.{txt,html})
      dune exec bench/main.exe -- --profile-diff BASE [CUR]
        (run-vs-run differential between two prof-report documents, e.g.
         a results/history/prof-*.json snapshot vs PROF_latest.json;
         CUR defaults to PROF_latest.json)
      dune exec bench/main.exe -- --check [--baseline FILE]
          [--tolerance PCT] [--jobs N | --shards N] [WORKLOAD ...]
        (perf-regression gate: re-run the baseline's roster and exit
         non-zero when cycles or check-removal rates degrade)
      dune exec bench/main.exe -- --faults [--fault-seed N] [--fault-spec S]
          [--jobs N] [--shards N | --shard K/N] [--out FILE] [--dir DIR]
          [--suite ...] [WORKLOAD ...]
        (fault-injection campaign: run the (workload x fault point) matrix
         under the differential oracle, write FAULTS_latest.json +
         results/campaigns/, exit non-zero on any silent wrong answer) *)

open Tce_metrics

let run_bechamel () =
  (* Micro-benchmarks of the reproduction's own hot paths (host-side
     wall-clock, not simulated cycles): how fast the simulator simulates. *)
  print_endline "Bechamel — simulator throughput micro-benchmarks";
  let open Bechamel in
  let quick_engine src =
    Staged.stage (fun () ->
        let t = Tce_engine.Engine.of_source src in
        Tce_engine.Engine.set_measuring t false;
        ignore (Tce_engine.Engine.run_main t))
  in
  let tests =
    [
      Test.make ~name:"fig8:smoke-interp"
        (Staged.stage (fun () ->
             let t =
               Tce_engine.Engine.of_source
                 ~config:{ Tce_engine.Engine.default_config with jit = false }
                 "var s = 0; for (var i = 0; i < 2000; i++) { s = (s + i) & 65535; } print(s);"
             in
             ignore (Tce_engine.Engine.run_main t)))
      ;
      Test.make ~name:"fig8:smoke-jit"
        (quick_engine
           "function f(n) { var s = 0; for (var i = 0; i < n; i++) { s = (s + i) & 65535; } return s; }\n\
            var r = 0; for (var k = 0; k < 40; k++) { r = f(500); } print(r);")
      ;
      Test.make ~name:"fig1:bytecode-compile"
        (Staged.stage (fun () ->
             ignore
               (Tce_jit.Bc_compile.compile_source
                  (Option.get (Tce_workloads.Workloads.by_name "richards"))
                    .Tce_workloads.Workload.source)))
      ;
      Test.make ~name:"table1:classlist-example"
        (Staged.stage (fun () -> ignore (Table1.run ())))
      ;
    ]
  in
  (* run each Bechamel test a handful of times and report wall-clock means
     (keeping the output format stable and dependency-light) *)
  List.iter
    (fun test ->
      List.iter
        (fun v ->
          let name = Test.Elt.name v in
          match Test.Elt.fn v with
          | Test.V { fn; kind = Test.Uniq; allocate; free } ->
            let run () =
              let w = allocate () in
              ignore (fn `Init (Test.Uniq.prj w));
              free w
            in
            run ();
            let n = 5 in
            let t0 = Unix.gettimeofday () in
            for _ = 1 to n do
              run ()
            done;
            let dt = (Unix.gettimeofday () -. t0) /. float_of_int n in
            Printf.printf "  %-28s %8.2f ms/run\n%!" name (1000.0 *. dt)
          | Test.V _ -> Printf.printf "  %-28s (skipped)\n" name)
        (Test.elements test))
    tests;
  print_newline ()

let all_experiments =
  [
    ("fig1", Experiments.print_fig1);
    ("fig2", Experiments.print_fig2);
    ("fig3", Experiments.print_fig3);
    ("table1", Table1.print);
    ("table2", Experiments.print_table2);
    ("fig8", Experiments.print_fig8);
    ("fig9", Experiments.print_fig9);
    ("overheads", Experiments.print_overheads);
    ("census", Experiments.print_census);
    ("cc-sweep", Ablation.cc_geometry_sweep);
    ("ablation", Ablation.poly_sweep);
    ("hoisting", Ablation.hoisting_sweep);
    ("checked-load", Ablation.checked_load_comparison);
    ("bechamel", run_bechamel);
    ("csv", fun () -> Experiments.write_csvs ());
  ]

(* A tiny built-in workload so `--metrics-json` has a fast default that
   still exercises tier-up, property ICs and the Class Cache. *)
let smoke_workload =
  Tce_workloads.Workload.make ~suite:Tce_workloads.Workload.Octane
    ~selected:false "smoke"
    {|
function Pt(x, y) { this.x = x; this.y = y; }
function bench() {
  var s = 0;
  for (var i = 0; i < 60; i++) {
    var p = new Pt(i, i + 1);
    s = (s + p.x + p.y) & 65535;
  }
  return s;
}
|}

let run_metrics_json ~path names =
  let names = if names = [] then [ "smoke" ] else names in
  let results =
    List.concat_map
      (fun name ->
        let w =
          if name = "smoke" then smoke_workload
          else
            match Tce_workloads.Workloads.by_name name with
            | Some w -> w
            | None ->
              Printf.eprintf "unknown workload %s\n" name;
              exit 1
        in
        let off, on = Harness.run_pair w in
        [ off; on ])
      names
  in
  Export.write_results ~path results

(* --- runner-backed modes (--bench / --check) --- *)

let usage_fail msg =
  Printf.eprintf "bench: %s\n" msg;
  exit 2

(* Tiny flag parser shared by the two modes: [--flag V] / [--flag=V] pairs
   plus positional workload names. *)
let parse_flags spec args =
  let opts = Hashtbl.create 8 in
  let positional = ref [] in
  let rec go = function
    | [] -> ()
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "--" -> (
      let body = String.sub a 2 (String.length a - 2) in
      match String.index_opt body '=' with
      | Some i ->
        let k = String.sub body 0 i in
        if not (List.mem k spec) then usage_fail ("unknown option --" ^ k);
        Hashtbl.replace opts k (String.sub body (i + 1) (String.length body - i - 1));
        go rest
      | None ->
        if not (List.mem body spec) then usage_fail ("unknown option --" ^ body);
        (match rest with
        | v :: rest' ->
          Hashtbl.replace opts body v;
          go rest'
        | [] -> usage_fail (Printf.sprintf "--%s needs a value" body)))
    | a :: rest ->
      positional := a :: !positional;
      go rest
  in
  go args;
  (opts, List.rev !positional)

let opt_int opts key ~default =
  match Hashtbl.find_opt opts key with
  | None -> default
  | Some v -> (
    match int_of_string_opt v with
    | Some i -> i
    | None -> usage_fail (Printf.sprintf "--%s expects an integer, got %s" key v))

let opt_float opts key ~default =
  match Hashtbl.find_opt opts key with
  | None -> default
  | Some v -> (
    match float_of_string_opt v with
    | Some f -> f
    | None -> usage_fail (Printf.sprintf "--%s expects a number, got %s" key v))

let resolve_workloads ~suite names =
  if names <> [] then
    List.map
      (fun name ->
        match Tce_workloads.Workloads.by_name name with
        | Some w -> w
        | None -> usage_fail ("unknown workload " ^ name))
      names
  else
    match suite with
    | "all" -> Tce_workloads.Workloads.all
    | "selected" -> Tce_workloads.Workloads.selected
    | "octane" -> Tce_workloads.Workloads.octane
    | "sunspider" -> Tce_workloads.Workloads.sunspider
    | "kraken" -> Tce_workloads.Workloads.kraken
    | s -> usage_fail ("unknown suite " ^ s)

(* Self-timing report (`--bench --time`): the host wall clock each
   off/on pair took, slowest first. This is how long the *simulator*
   runs, not anything simulated — the table is the measurement behind the
   README's "performance of the simulator itself" numbers and the first
   place to look before reaching for dev/profile.sh. *)
let print_time_table (run : Tce_runner.Record.run) =
  let module R = Tce_runner.Record in
  let ws =
    List.sort
      (fun (a : R.workload) b -> compare b.R.wall_seconds a.R.wall_seconds)
      run.R.workloads
  in
  let total = List.fold_left (fun s (w : R.workload) -> s +. w.R.wall_seconds) 0.0 ws in
  Printf.printf "\nhost wall clock per workload (informational, slowest first)\n";
  Printf.printf "%-22s %9s %9s %9s %7s\n" "workload" "off(s)" "on(s)" "pair(s)"
    "share";
  List.iter
    (fun (w : R.workload) ->
      Printf.printf "%-22s %9.2f %9.2f %9.2f %6.1f%%\n" w.R.name
        w.R.wall_seconds_off w.R.wall_seconds_on w.R.wall_seconds
        (if total > 0.0 then 100.0 *. w.R.wall_seconds /. total else 0.0))
    ws;
  Printf.printf "%-22s %9s %9s %9.2f %6s  (suite total %.2fs incl. scheduling)\n"
    "total" "" "" total "" run.R.host_wall_seconds

(* Shared by --bench / --faults / --check: the supervision knobs
   (--supervise-timeout SECONDS, --max-retries N) over the defaults. *)
let supervise_config opts =
  let d = Tce_runner.Supervise.default_config in
  {
    d with
    Tce_runner.Supervise.cell_timeout_s =
      opt_float opts "supervise-timeout"
        ~default:d.Tce_runner.Supervise.cell_timeout_s;
    max_retries =
      opt_int opts "max-retries" ~default:d.Tce_runner.Supervise.max_retries;
  }

(* `--no-cache` / `--cache-dir DIR`: every runner-backed mode consults the
   content-addressed cell cache by default (results/cache/) — a repeated
   identical run performs zero simulations. [--no-cache] disables it,
   [--cache-dir] relocates it (tests, CI isolation). *)
let make_cache opts =
  match Hashtbl.find_opt opts "cache-dir" with
  | Some dir -> Tce_runner.Cache.create ~dir ()
  | None -> Tce_runner.Cache.create ()

(* Shared post-run bookkeeping: one stats line to stdout, the telemetry
   counters, and the size-bounded LRU prune. *)
let finish_cache ?telem cache =
  match cache with
  | None -> ()
  | Some c ->
    let s = Tce_runner.Cache.stats c in
    Tce_runner.Cache.print_stats s;
    (match telem with
    | Some t -> Tce_runner.Telem.cache_stats t s
    | None -> ());
    ignore (Tce_runner.Cache.prune ~dir:(Tce_runner.Cache.dir c) ())

(* `--worker-indices i,j,k` (hidden worker mode, spawned by the supervised
   parent): the explicit cell indices this worker must run, in order. *)
let parse_indices s =
  List.map
    (fun t ->
      match int_of_string_opt (String.trim t) with
      | Some i -> i
      | None -> usage_fail (Printf.sprintf "--worker-indices: bad index %S" t))
    (String.split_on_char ',' s)

(* `--chaos MODE:ARG` (hidden worker side of the chaos harness). *)
let parse_worker_chaos opts =
  match Hashtbl.find_opt opts "chaos" with
  | None -> None
  | Some spec -> (
    match Tce_runner.Supervise.Chaos.parse spec with
    | Ok c -> Some c
    | Error e -> usage_fail e)

(* `--chaos-worker MODE [--chaos-seed N]` (parent side): arm one seeded
   worker fault per run, for the CI chaos smoke and local drills. *)
let parse_parent_chaos opts =
  match Hashtbl.find_opt opts "chaos-worker" with
  | None -> None
  | Some m -> (
    match Tce_runner.Supervise.Chaos.parse_mode m with
    | Ok mode -> Some (mode, opt_int opts "chaos-seed" ~default:1)
    | Error e -> usage_fail ("bad --chaos-worker: " ^ e))

(* `--telemetry-out FILE` / `--serve-metrics PORT` / `--status-board`:
   the fleet-telemetry surfaces shared by --bench / --faults / --check
   (plus the hidden `--heartbeat SLOT` worker side). All of them off —
   the common case — means [None] is threaded everywhere and the run is
   byte-identical to a build without telemetry. *)
let telem_flags = [ "telemetry-out"; "serve-metrics"; "heartbeat" ]

let make_telem ~driver ~total ~board opts =
  let serve =
    match Hashtbl.find_opt opts "serve-metrics" with
    | None -> None
    | Some v -> (
      match int_of_string_opt v with
      | Some p when p >= 0 -> Some p
      | _ ->
        usage_fail (Printf.sprintf "--serve-metrics expects a port, got %s" v))
  in
  let options =
    { Tce_runner.Telem.out = Hashtbl.find_opt opts "telemetry-out"; serve; board }
  in
  match Tce_runner.Telem.create ~driver ~total options with
  | Error e -> usage_fail ("telemetry: " ^ e)
  | Ok t ->
    (match Option.bind t Tce_runner.Telem.server_port with
    | Some p ->
      (* announce the bound port (essential with --serve-metrics 0) *)
      Printf.eprintf
        "telemetry: serving OpenMetrics on http://127.0.0.1:%d/metrics\n%!" p
    | None -> ());
    t

(* Hidden worker side: `--heartbeat SLOT` makes the worker interleave
   `telem` progress envelopes with its row stream. *)
let worker_beat opts ~indices =
  match Hashtbl.find_opt opts "heartbeat" with
  | None -> None
  | Some v -> (
    match int_of_string_opt v with
    | Some slot ->
      Some
        (Tce_telem.Heartbeat.emitter ~slot ~total:(List.length indices)
           ~out:stdout)
    | None ->
      usage_fail (Printf.sprintf "--heartbeat expects a slot number, got %s" v))

let run_bench args =
  (* `--attr[=FILE]`, `--profile[=FILE]`, `--time`, `--strict` and
     `--no-templates` are value-less flags; peel them off before the
     value-taking flag parser sees them. *)
  let time_args, args = List.partition (fun a -> a = "--time") args in
  let show_time = time_args <> [] in
  let board_args, args = List.partition (fun a -> a = "--status-board") args in
  let board = board_args <> [] in
  let det_args, args = List.partition (fun a -> a = "--deterministic") args in
  let deterministic = det_args <> [] in
  let strict_args, args = List.partition (fun a -> a = "--strict") args in
  let strict = strict_args <> [] in
  let nc_args, args = List.partition (fun a -> a = "--no-cache") args in
  let no_cache = nc_args <> [] in
  let nt_args, args = List.partition (fun a -> a = "--no-templates") args in
  let config =
    (* template execution is bit-identical, so this only changes host wall
       time (the serial-vs-templated wall table in the README) *)
    if nt_args = [] then None
    else Some { Tce_engine.Engine.default_config with templates = false }
  in
  let attr_args, args =
    List.partition
      (fun a ->
        a = "--attr"
        || (String.length a > 7 && String.sub a 0 7 = "--attr="))
      args
  in
  let attr_out =
    match attr_args with
    | [] -> None
    | a :: _ when String.length a > 7 ->
      Some (String.sub a 7 (String.length a - 7))
    | _ -> Some Tce_runner.Store.attr_latest_path
  in
  let prof_args, args =
    List.partition
      (fun a ->
        a = "--profile"
        || (String.length a > 10 && String.sub a 0 10 = "--profile="))
      args
  in
  let prof_out =
    match prof_args with
    | [] -> None
    | a :: _ when String.length a > 10 ->
      Some (String.sub a 10 (String.length a - 10))
    | _ -> Some "bench_profile.folded"
  in
  let opts, names =
    parse_flags
      ([ "jobs"; "out"; "history"; "suite"; "shards"; "shard"; "worker-indices";
         "chaos"; "supervise-timeout"; "max-retries"; "resume"; "chaos-worker";
         "chaos-seed"; "cache-dir" ]
      @ telem_flags)
      args
  in
  let jobs = opt_int opts "jobs" ~default:(Tce_runner.Runner.default_jobs ()) in
  let suite = Option.value ~default:"all" (Hashtbl.find_opt opts "suite") in
  let ws = resolve_workloads ~suite names in
  (* Worker modes (spawned by a parent driver): run the assigned cells and
     stream row envelopes on stdout — no summary, no result files.
     `--worker-indices i,j,k` is the supervised parent's explicit
     assignment; `--shard K/N` the legacy round-robin slice. *)
  (match Hashtbl.find_opt opts "worker-indices" with
  | None -> ()
  | Some s ->
    let indices = parse_indices s in
    Tce_runner.Shard.bench_worker_indices ?config
      ?chaos:(parse_worker_chaos opts) ?beat:(worker_beat opts ~indices)
      ~indices ~out:stdout ws;
    exit 0);
  (match Hashtbl.find_opt opts "shard" with
  | None -> ()
  | Some spec_str -> (
    if attr_out <> None || prof_out <> None || show_time then
      usage_fail "--shard is a worker mode; --attr/--profile/--time live on the parent";
    match Tce_runner.Shard.parse_spec spec_str with
    | Error e -> usage_fail e
    | Ok (shard, shards) ->
      Tce_runner.Shard.bench_worker ?config ~shard ~shards ~out:stdout ws;
      exit 0));
  let shards = opt_int opts "shards" ~default:1 in
  if shards < 1 then usage_fail "--shards expects a positive integer";
  if shards > 1 && (attr_out <> None || prof_out <> None) then
    usage_fail "--attr/--profile are not supported with --shards (run them serially)";
  let resume = Hashtbl.find_opt opts "resume" in
  let telem = make_telem ~driver:"bench" ~total:(List.length ws) ~board opts in
  let chaos = parse_parent_chaos opts in
  (* chaos drills exist to exercise live workers, so an armed chaos
     harness disables the cell cache (a warm cache would pre-resolve the
     cells the fault was aimed at) *)
  let cache =
    if no_cache || chaos <> None then None else Some (make_cache opts)
  in
  let run =
    if shards > 1 || resume <> None then
      Tce_runner.Shard.bench_parent ~shards
        ~supervise:(supervise_config opts) ?resume ?chaos ?telem ?config ?cache
        ~worker_args:(if Option.is_none config then [] else [ "--no-templates" ])
        ws
    else
      let on_row =
        Option.map
          (fun t (w : Tce_runner.Record.workload) ->
            Tce_runner.Telem.cell_done t ~name:w.Tce_runner.Record.name)
          telem
      in
      Tce_runner.Runner.run_suite ?cache ?config ~jobs ?on_row ws
  in
  finish_cache ?telem cache;
  Option.iter Tce_runner.Telem.finish telem;
  let run = if deterministic then Tce_runner.Record.normalize_run run else run in
  let latest =
    Option.value ~default:Tce_runner.Store.latest_path (Hashtbl.find_opt opts "out")
  in
  let history =
    Option.value ~default:Tce_runner.Store.history_dir
      (Hashtbl.find_opt opts "history")
  in
  let hist_path = Tce_runner.Store.save ~latest ~history run in
  Tce_runner.Store.print_summary run;
  if show_time then print_time_table run;
  Printf.printf "wrote %s (history: %s)\n" latest hist_path;
  (match attr_out with
  | None -> ()
  | Some path ->
    (* Suite attribution from the benchmark records themselves (the
       composition block), so the report reflects exactly what the
       parallel domains measured — no ledger crosses a domain boundary. *)
    let per_workload =
      List.map
        (fun (w : Tce_runner.Record.workload) ->
          ( w.Tce_runner.Record.name,
            List.map
              (fun (kind, off, on) ->
                { Tce_attr.Aggregate.kind; off; on_ = on })
              w.Tce_runner.Record.checks_by_kind ))
        run.Tce_runner.Record.workloads
    in
    print_string (Tce_attr.Aggregate.suite_table per_workload);
    Tce_obs.Export.to_file ~path
      (Tce_attr.Aggregate.suite_report_json per_workload);
    Printf.printf "wrote %s\n" path);
  if show_time then begin
    Tce_runner.Store.save_time_report run;
    Printf.printf "wrote %s\n" Tce_runner.Store.time_latest_path
  end;
  (match prof_out with
  | None -> ()
  | Some folded_path ->
    (* Second pass under the profiler: whole-run measurement per side (the
       reconciliation invariant needs counters on from the first
       instruction), so these runs are separate from the steady-state
       numbers saved above. *)
    let module R = Tce_prof.Report in
    let profs =
      Tce_runner.Runner.run_profiles ~jobs
        ~cost:(Tce_runner.Store.baseline_cost_of_workload ())
        ws
    in
    let pairs =
      List.map
        (fun (p : Harness.profiled) ->
          {
            R.p_name = p.Harness.p_name;
            p_off = Some p.Harness.p_off;
            p_on = Some p.Harness.p_on;
          })
        profs
    in
    print_newline ();
    print_string (R.diff_table pairs);
    let doc =
      R.suite_doc ~git_sha:run.Tce_runner.Record.git_sha
        ~config_hash:run.Tce_runner.Record.config_hash
        ~created_utc:run.Tce_runner.Record.created_utc pairs
    in
    let hist =
      Tce_runner.Store.save_prof ~history
        ~git_sha:run.Tce_runner.Record.git_sha
        ~created_utc:run.Tce_runner.Record.created_utc doc
    in
    let oc = open_out folded_path in
    List.iter
      (fun (p : Harness.profiled) ->
        output_string oc p.Harness.p_folded_off;
        output_string oc p.Harness.p_folded_on)
      profs;
    close_out oc;
    Printf.printf "wrote %s (history: %s) and %s\n"
      Tce_runner.Store.prof_latest_path hist folded_path);
  (* Non-strict runs survive quarantined cells (the remaining rows are
     intact and reported); --strict makes any quarantine fail the run. *)
  if strict && run.Tce_runner.Record.quarantined <> [] then begin
    Printf.eprintf "bench: --strict and %d cell(s) quarantined\n"
      (List.length run.Tce_runner.Record.quarantined);
    exit 1
  end;
  exit 0

(* Run-vs-run differential between two stored prof-report documents. *)
let run_profile_diff args =
  let load_pairs path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> usage_fail msg
    | text -> (
      match Result.bind (Tce_obs.Json.of_string text) Tce_prof.Report.suite_of_json with
      | Ok pairs -> pairs
      | Error msg -> usage_fail (Printf.sprintf "%s: %s" path msg))
  in
  let base_path, cur_path =
    match args with
    | [ b ] -> (b, Tce_runner.Store.prof_latest_path)
    | [ b; c ] -> (b, c)
    | _ -> usage_fail "--profile-diff needs BASE [CUR] prof-report files"
  in
  let base = load_pairs base_path and cur = load_pairs cur_path in
  Printf.printf "profile drift: %s -> %s (mechanism-on side)\n\n" base_path
    cur_path;
  print_string (Tce_prof.Report.diff_runs ~base ~cur);
  exit 0

let run_faults args =
  let strict_args, args = List.partition (fun a -> a = "--strict") args in
  let strict = strict_args <> [] in
  let board_args, args = List.partition (fun a -> a = "--status-board") args in
  let board = board_args <> [] in
  let nc_args, args = List.partition (fun a -> a = "--no-cache") args in
  let no_cache = nc_args <> [] in
  let opts, names =
    parse_flags
      ([ "jobs"; "fault-seed"; "fault-spec"; "out"; "dir"; "suite"; "shards";
         "shard"; "worker-indices"; "chaos"; "supervise-timeout"; "max-retries";
         "resume"; "chaos-worker"; "chaos-seed"; "cache-dir" ]
      @ telem_flags)
      args
  in
  let jobs = opt_int opts "jobs" ~default:(Tce_runner.Runner.default_jobs ()) in
  let seed =
    opt_int opts "fault-seed" ~default:Tce_runner.Campaign.default_seed
  in
  let spec =
    match Hashtbl.find_opt opts "fault-spec" with
    | None -> Tce_fault.Spec.default
    | Some s -> (
      match Tce_fault.Spec.parse s with
      | Ok spec -> spec
      | Error e -> usage_fail ("bad --fault-spec: " ^ e))
  in
  let suite = Option.value ~default:"all" (Hashtbl.find_opt opts "suite") in
  let ws = resolve_workloads ~suite names in
  (* Worker modes: run the assigned matrix cells, envelopes on stdout
     (spawned by a `--shards N` parent — no summary, no files). *)
  (match Hashtbl.find_opt opts "worker-indices" with
  | None -> ()
  | Some s ->
    let indices = parse_indices s in
    Tce_runner.Campaign.worker_indices ~spec ~seed
      ?chaos:(parse_worker_chaos opts) ?beat:(worker_beat opts ~indices)
      ~indices ~out:stdout ws;
    exit 0);
  (match Hashtbl.find_opt opts "shard" with
  | None -> ()
  | Some spec_str -> (
    match Tce_runner.Shard.parse_spec spec_str with
    | Error e -> usage_fail e
    | Ok (shard, shards) ->
      Tce_runner.Campaign.worker ~spec ~seed ~shard ~shards ~out:stdout ws;
      exit 0));
  let shards = opt_int opts "shards" ~default:1 in
  if shards < 1 then usage_fail "--shards expects a positive integer";
  let resume = Hashtbl.find_opt opts "resume" in
  let telem =
    make_telem ~driver:"faults"
      ~total:(List.length (Tce_runner.Campaign.matrix ~spec ws))
      ~board opts
  in
  let campaign =
    if shards > 1 || resume <> None then
      (* pass the cell-identity inputs through verbatim; the roster goes as
         positional names, so --suite need not survive the hop *)
      let pass key =
        match Hashtbl.find_opt opts key with
        | None -> []
        | Some v -> [ "--" ^ key; v ]
      in
      Tce_runner.Campaign.parent ~spec ~seed ~shards
        ~supervise:(supervise_config opts) ?resume
        ?chaos:(parse_parent_chaos opts) ?telem
        ~worker_args:(pass "fault-seed" @ pass "fault-spec")
        ws
    else
      let on_cell =
        Option.map
          (fun t (c : Tce_runner.Campaign.cell) ->
            Tce_runner.Telem.cell_done t
              ~name:
                (Printf.sprintf "%s×%s" c.Tce_runner.Campaign.workload
                   c.Tce_runner.Campaign.point))
          telem
      in
      (* the cell cache serves the in-process path only (the sharded
         parent's workers re-simulate; its cells are rare enough that a
         pre-resolution pass has not been worth the plumbing) *)
      let cache = if no_cache then None else Some (make_cache opts) in
      let campaign = Tce_runner.Campaign.run ?cache ~spec ~seed ~jobs ?on_cell ws in
      finish_cache ?telem cache;
      campaign
  in
  Option.iter Tce_runner.Telem.finish telem;
  let latest =
    Option.value ~default:Tce_runner.Campaign.latest_path
      (Hashtbl.find_opt opts "out")
  in
  let dir =
    Option.value ~default:Tce_runner.Campaign.campaigns_dir
      (Hashtbl.find_opt opts "dir")
  in
  let archive = Tce_runner.Campaign.save ~latest ~dir campaign in
  Tce_runner.Campaign.print_summary campaign;
  Printf.printf "wrote %s (archive: %s)\n" latest archive;
  exit (Tce_runner.Campaign.exit_code ~strict campaign)

(* `--sweep "cc.entries=... cc.ways=... cl.size=..."`: the design-space
   explorer — expand the geometry grid, run the (point × workload) cell
   matrix (in-process or supervised across --shards N workers), and
   report the Pareto frontier. Cells flow through the cell cache, so a
   repeated sweep performs zero simulations and changing one axis value
   re-simulates only that axis's cells. *)
let run_sweep args =
  let spec_str, args =
    match args with
    | spec :: rest when String.length spec < 2 || String.sub spec 0 2 <> "--" ->
      (spec, rest)
    | _ ->
      usage_fail
        "--sweep needs a spec string (e.g. \"cc.entries=64,128 cc.ways=1,2\")"
  in
  let board_args, args = List.partition (fun a -> a = "--status-board") args in
  let board = board_args <> [] in
  let det_args, args = List.partition (fun a -> a = "--deterministic") args in
  let deterministic = det_args <> [] in
  let nc_args, args = List.partition (fun a -> a = "--no-cache") args in
  let no_cache = nc_args <> [] in
  let strict_args, args = List.partition (fun a -> a = "--strict") args in
  let strict = strict_args <> [] in
  let opts, names =
    parse_flags
      ([ "jobs"; "out"; "csv"; "dir"; "suite"; "shards"; "worker-indices";
         "supervise-timeout"; "max-retries"; "resume"; "cache-dir" ]
      @ telem_flags)
      args
  in
  let axes =
    match Tce_runner.Sweep.parse_spec spec_str with
    | Ok a -> a
    | Error e -> usage_fail ("bad --sweep spec: " ^ e)
  in
  let suite = Option.value ~default:"all" (Hashtbl.find_opt opts "suite") in
  let ws = resolve_workloads ~suite names in
  (* Hidden worker mode (spawned by the supervised parent): run the
     assigned matrix cells, sweep-cell envelopes on stdout. *)
  (match Hashtbl.find_opt opts "worker-indices" with
  | None -> ()
  | Some s ->
    let indices = parse_indices s in
    Tce_runner.Sweep.worker_indices
      ?beat:(worker_beat opts ~indices)
      ~axes ~indices ~out:stdout ws;
    exit 0);
  let jobs = opt_int opts "jobs" ~default:(Tce_runner.Runner.default_jobs ()) in
  let shards = opt_int opts "shards" ~default:1 in
  if shards < 1 then usage_fail "--shards expects a positive integer";
  let resume = Hashtbl.find_opt opts "resume" in
  let points, _ = Tce_runner.Sweep.expand axes in
  if points = [] then usage_fail "empty sweep grid (every combination invalid)";
  let total = List.length points * List.length ws in
  let telem = make_telem ~driver:"sweep" ~total ~board opts in
  let cache = if no_cache then None else Some (make_cache opts) in
  let sweep =
    if shards > 1 || resume <> None then
      Tce_runner.Sweep.parent ~supervise:(supervise_config opts) ?resume ?telem
        ?cache ~shards ~worker_args:[] ~axes ws
    else
      let on_row =
        Option.map
          (fun t (w : Tce_runner.Record.workload) ->
            Tce_runner.Telem.cell_done t ~name:w.Tce_runner.Record.name)
          telem
      in
      Tce_runner.Sweep.run ?cache ~jobs ?on_row ~axes ws
  in
  finish_cache ?telem cache;
  Option.iter Tce_runner.Telem.finish telem;
  let sweep =
    if deterministic then Tce_runner.Sweep.normalize sweep else sweep
  in
  print_string (Tce_runner.Sweep.report sweep);
  let latest =
    Option.value ~default:Tce_runner.Store.sweep_latest_path
      (Hashtbl.find_opt opts "out")
  in
  let dir =
    Option.value ~default:Tce_runner.Store.sweeps_dir
      (Hashtbl.find_opt opts "dir")
  in
  let archive = Tce_runner.Sweep.save ~latest ~dir sweep in
  let csv_path =
    Option.value
      ~default:(Filename.remove_extension latest ^ ".csv")
      (Hashtbl.find_opt opts "csv")
  in
  let oc = open_out csv_path in
  output_string oc (Tce_runner.Sweep.to_csv sweep);
  close_out oc;
  Printf.printf "wrote %s (archive: %s) and %s\n" latest archive csv_path;
  if strict && sweep.Tce_runner.Sweep.quarantined <> [] then begin
    Printf.eprintf "sweep: --strict and %d cell(s) quarantined\n"
      (List.length sweep.Tce_runner.Sweep.quarantined);
    exit 1
  end;
  (* a default-point row differing from the committed baseline is a real
     regression, not a reporting detail *)
  match Tce_runner.Sweep.baseline_check sweep with
  | Ok _ -> exit 0
  | Error _ -> exit 1

(* `--trends [N]`: cross-run trend report over the archived history. *)
let run_trends args =
  let n, rest =
    match args with
    | a :: rest when int_of_string_opt a <> None -> (int_of_string a, rest)
    | rest -> (20, rest)
  in
  if rest <> [] then
    usage_fail ("--trends takes at most a run count, got " ^ String.concat " " rest);
  if n < 1 then usage_fail "--trends expects a positive run count";
  match Tce_runner.Trend_data.run ~n () with
  | Ok _anomalies -> exit 0
  | Error e ->
    Printf.eprintf "trends: %s\n" e;
    exit 2

let run_check args =
  let board_args, args = List.partition (fun a -> a = "--status-board") args in
  let board = board_args <> [] in
  let nc_args, args = List.partition (fun a -> a = "--no-cache") args in
  let no_cache = nc_args <> [] in
  let opts, names =
    parse_flags
      ([ "baseline"; "tolerance"; "jobs"; "shards"; "supervise-timeout";
         "max-retries"; "cache-dir" ]
      @ telem_flags)
      args
  in
  let baseline_path =
    Option.value ~default:Tce_runner.Store.baseline_path
      (Hashtbl.find_opt opts "baseline")
  in
  let tolerance_pct =
    opt_float opts "tolerance" ~default:Tce_runner.Gate.default_tolerance_pct
  in
  let jobs = opt_int opts "jobs" ~default:(Tce_runner.Runner.default_jobs ()) in
  let shards = opt_int opts "shards" ~default:1 in
  if shards < 1 then usage_fail "--shards expects a positive integer";
  (* The gate sizes the roster itself ({!Tce_runner.Telem.set_total}),
     so the scheduled total starts at 0 here. *)
  let telem = make_telem ~driver:"gate" ~total:0 ~board opts in
  let cache = if no_cache then None else Some (make_cache opts) in
  let runner =
    if shards > 1 then
      Some
        (fun roster ->
          Tce_runner.Shard.bench_parent ~shards
            ~supervise:(supervise_config opts) ?telem ?cache ~worker_args:[]
            roster)
    else None
  in
  let code =
    Tce_runner.Gate.run_gate ~baseline_path ~tolerance_pct ?cache ~jobs ~names
      ?runner ?telem ()
  in
  Option.iter Tce_runner.Telem.finish telem;
  exit code

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* `--metrics-json FILE [workload ...]` / `--metrics-json=FILE` is a
     separate mode: JSON export instead of the experiment tables. *)
  (match args with
  | "--bench" :: rest -> run_bench rest
  | "--check" :: rest -> run_check rest
  | "--faults" :: rest -> run_faults rest
  | "--sweep" :: rest -> run_sweep rest
  | "--profile-diff" :: rest -> run_profile_diff rest
  | "--trends" :: rest -> run_trends rest
  | "--metrics-json" :: path :: rest ->
    run_metrics_json ~path rest;
    exit 0
  | first :: rest when String.length first > 15
                       && String.sub first 0 15 = "--metrics-json=" ->
    run_metrics_json
      ~path:(String.sub first 15 (String.length first - 15))
      rest;
    exit 0
  | _ -> ());
  let chosen =
    if args = [] then List.map fst all_experiments
    else args
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all_experiments with
      | Some f ->
        (try f ()
         with e ->
           Printf.printf "experiment %s failed: %s\n" name (Printexc.to_string e))
      | None -> Printf.printf "unknown experiment %s\n" name)
    chosen
