// Deliberately deopting workload for the observability walkthrough
// (see lib/obs/README.md and the top-level README "Tracing a deopt").
//
// Phase 1 warms `sum` past the tier-up threshold with monomorphic
// Point objects whose fields are SMIs, so the optimizing compiler
// speculates on the hidden class and on integer arithmetic.
// Phase 2 feeds it a point whose `x` is a double: the untag-number /
// check-map speculation fails and the optimized code deopts back to
// the interpreter with a human-readable reason in the trace.
function Point(x, y) { this.x = x; this.y = y; }

function sum(p, n) {
  var s = 0;
  for (var i = 0; i < n; i++) {
    s = (s + p.x + p.y + i) & 268435455;
  }
  return s;
}

var acc = 0;
// phase 1: warm up and tier up (hot_call_count is 6)
for (var k = 0; k < 12; k++) {
  acc = (acc + sum(new Point(k, k + 1), 400)) & 268435455;
}
// phase 2: misspeculate — x is now a heap number
var bad = new Point(0.5, 3);
acc = (acc + sum(bad, 400)) & 268435455;
print(acc);
