(* Tests for superinstruction-template execution and roster sharding:
   (a) exhaustive block-splitting coverage: one sample of every LIR
       constructor, classified by a wildcard-free match (so adding a
       constructor breaks this test at compile time), laid out and checked
       against the fusion invariants (lib/machine/README.md);
   (b) layout rejections: the streams the fused executor must refuse
       (no terminator at the end, fall-through off the end, branch target
       or register operand out of range, empty stream);
   (c) templated execution is bit-identical to the per-instruction loop on
       real workloads (every simulated field of the benchmark record);
   (d) the cycle-attribution profiler still reconciles exactly with
       templates on (summarize fails the run otherwise);
   (e) shard-merge determinism: row envelopes merged in any completion
       order produce the identical run record, and malformed merges fail
       loudly. *)

open Tce_runner
module Lir = Tce_jit.Lir
module Predecode = Tce_machine.Predecode
module Template = Tce_machine.Template
module W = Tce_workloads.Workload

(* --- (a) exhaustive constructor coverage --- *)

(* The block-splitting contract, restated per constructor with no wildcard:
   the compiler forces this test to grow with the instruction set. *)
let expected_terminator : Lir.op -> bool = function
  | Lir.AluOv _ | Lir.CheckedLoad _ | Lir.Branch _ | Lir.FBranch _
  | Lir.Jmp _ | Lir.CallFn _ | Lir.CallRt _ | Lir.CallRtChecked _
  | Lir.Ret _ | Lir.Deopt _ | Lir.StoreClassCache _
  | Lir.StoreClassCacheArray _ ->
    true
  | Lir.MovImm _ | Lir.Mov _ | Lir.Alu _ | Lir.Alu32 _ | Lir.Load _
  | Lir.LoadIdx _ | Lir.Store _ | Lir.StoreIdx _ | Lir.FMov _
  | Lir.FMovImm _ | Lir.FLoad _ | Lir.FLoadIdx _ | Lir.FStore _
  | Lir.FStoreIdx _ | Lir.FAdd _ | Lir.FSub _ | Lir.FMul _ | Lir.FDiv _
  | Lir.FSqrt _ | Lir.FNeg _ | Lir.FAbs _ | Lir.CvtIF _ | Lir.TruncFI _
  | Lir.MovClassID _ | Lir.MovClassIDArray _ | Lir.Profile _
  | Lir.ProfileStore _ ->
    false

(* Only [Ret], [Deopt] and [Jmp] never continue at pc+1. *)
let expected_falls_through : Lir.op -> bool = function
  | Lir.Ret _ | Lir.Deopt _ | Lir.Jmp _ -> false
  | _ -> true

(* One sample per LIR constructor, register operands within [0, 8). Branch
   labels are patched by the harness to point at the stream's final Ret. *)
let samples : (string * Lir.op) list =
  [
    ("MovImm", Lir.MovImm (0, 7));
    ("Mov", Lir.Mov (0, 1));
    ("Alu", Lir.Alu (Lir.Add, 0, 1, Lir.Reg 2));
    ("Alu32", Lir.Alu32 (Lir.Xor, 0, 1, Lir.Imm 3));
    ("AluOv", Lir.AluOv (Lir.Add, 0, 1, Lir.Reg 2, -1));
    ("Load", Lir.Load (0, 1, 8));
    ("CheckedLoad", Lir.CheckedLoad (0, 1, 8, 42, 0));
    ("LoadIdx", Lir.LoadIdx (0, 1, 2, 8));
    ("Store", Lir.Store (0, 8, Lir.Reg 1));
    ("StoreIdx", Lir.StoreIdx (0, 1, 8, Lir.Imm 5));
    ("FMov", Lir.FMov (0, 1));
    ("FMovImm", Lir.FMovImm (0, 2.5));
    ("FLoad", Lir.FLoad (0, 1, 8));
    ("FLoadIdx", Lir.FLoadIdx (0, 1, 2, 8));
    ("FStore", Lir.FStore (0, 8, 1));
    ("FStoreIdx", Lir.FStoreIdx (0, 1, 8, 2));
    ("FAdd", Lir.FAdd (0, 1, 2));
    ("FSub", Lir.FSub (0, 1, 2));
    ("FMul", Lir.FMul (0, 1, 2));
    ("FDiv", Lir.FDiv (0, 1, 2));
    ("FSqrt", Lir.FSqrt (0, 1));
    ("FNeg", Lir.FNeg (0, 1));
    ("FAbs", Lir.FAbs (0, 1));
    ("CvtIF", Lir.CvtIF (0, 1));
    ("TruncFI", Lir.TruncFI (0, 1));
    ("Branch", Lir.Branch (Lir.Eq, 0, Lir.Imm 0, -1));
    ("FBranch", Lir.FBranch (Lir.FLt, 0, 1, -1));
    ("Jmp", Lir.Jmp (-1));
    ("CallFn", Lir.CallFn (0, [| 1 |], 2, 0));
    ("CallRt", Lir.CallRt (Lir.Rt_box_double, [||], [| 0 |], Some 1, None));
    ("CallRtChecked", Lir.CallRtChecked (Lir.Rt_generic_get_elem, [| 1; 2 |], Some 3, 0));
    ("Ret", Lir.Ret 0);
    ("Deopt", Lir.Deopt 0);
    ("MovClassID", Lir.MovClassID 0);
    ("MovClassIDArray", Lir.MovClassIDArray (1, 0));
    ("StoreClassCache", Lir.StoreClassCache (1, 0, Lir.Reg 2, 0));
    ("StoreClassCacheArray", Lir.StoreClassCacheArray (1, 1, 2, 0, Lir.Imm 5, 0));
    ("Profile", Lir.Profile (1, 0, 0));
    ("ProfileStore", Lir.ProfileStore (1, 0, 0, Lir.Ps_reg 2));
  ]

let mk_func ?(n_regs = 8) ?(n_fregs = 8) code =
  {
    Lir.fn_id = 0;
    opt_id = 0;
    name = "template-test";
    code = Array.of_list (List.map (Lir.inst Tce_jit.Categories.C_other) code);
    deopts = [||];
    reprs = [||];
    n_regs;
    n_fregs;
    code_addr = 0x5000_0000;
    spec_deps = [];
    invalidated = false;
    deopt_hits = 0;
  }

(* Patch [-1] placeholder labels to [tgt]. *)
let patch tgt (op : Lir.op) : Lir.op =
  match op with
  | Lir.AluOv (a, d, s, o, l) when l = -1 -> Lir.AluOv (a, d, s, o, tgt)
  | Lir.Branch (c, r, o, l) when l = -1 -> Lir.Branch (c, r, o, tgt)
  | Lir.FBranch (c, a, b, l) when l = -1 -> Lir.FBranch (c, a, b, tgt)
  | Lir.Jmp l when l = -1 -> Lir.Jmp tgt
  | op -> op

let check_invariants name (pf : Predecode.func) (t : Template.t) =
  let n = Array.length pf.Predecode.ops in
  let blocks = t.Template.blocks in
  (* blocks partition [0, n) in order *)
  let covered =
    Array.fold_left
      (fun next (b : Template.block) ->
        Alcotest.(check int) (name ^ ": blocks are contiguous") next
          b.Template.b_start;
        Alcotest.(check bool) (name ^ ": block indexed at its leader") true
          (t.Template.block_of_pc.(b.Template.b_start) >= 0);
        next + b.Template.b_len)
      0 blocks
  in
  Alcotest.(check int) (name ^ ": blocks cover the stream") n covered;
  Array.iter
    (fun (b : Template.block) ->
      (* only the last instruction may be a terminator, and it is one
         exactly when the block says so *)
      for pc = b.Template.b_start to b.Template.b_start + b.Template.b_len - 2
      do
        Alcotest.(check bool)
          (Printf.sprintf "%s: pc %d is fused mid-block" name pc)
          false
          (Template.is_terminator pf.Predecode.ops.(pc))
      done;
      let last = b.Template.b_start + b.Template.b_len - 1 in
      Alcotest.(check bool) (name ^ ": b_terminated matches the last op")
        b.Template.b_terminated
        (Template.is_terminator pf.Predecode.ops.(last));
      (* every static successor is a block leader *)
      List.iter
        (fun tgt ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: branch target %d is a leader" name tgt)
            true
            (t.Template.block_of_pc.(tgt) >= 0))
        (Template.targets pf.Predecode.ops.(last));
      if b.Template.b_terminated && Template.falls_through pf.Predecode.ops.(last)
         && last + 1 < n
      then
        Alcotest.(check bool) (name ^ ": fall-through lands on a leader") true
          (t.Template.block_of_pc.(last + 1) >= 0);
      (* en-bloc summary = per-instruction summaries added up *)
      let whole =
        Template.summarize pf ~start:b.Template.b_start ~len:b.Template.b_len
      in
      let step =
        List.init b.Template.b_len (fun i ->
            Template.summarize pf ~start:(b.Template.b_start + i) ~len:1)
      in
      let add f = List.fold_left (fun a s -> a + f s) 0 step in
      Alcotest.(check (list int)) (name ^ ": summary is additive per category")
        (Array.to_list whole.Template.s_by_cat)
        (List.fold_left
           (fun acc (s : Template.summary) ->
             List.map2 ( + ) acc (Array.to_list s.Template.s_by_cat))
           (List.map (fun _ -> 0) (Array.to_list whole.Template.s_by_cat))
           step);
      Alcotest.(check int) (name ^ ": guards add up") whole.Template.s_guards
        (add (fun s -> s.Template.s_guards));
      Alcotest.(check int) (name ^ ": loads add up") whole.Template.s_loads
        (add (fun s -> s.Template.s_loads));
      Alcotest.(check int) (name ^ ": stores add up") whole.Template.s_stores
        (add (fun s -> s.Template.s_stores));
      Alcotest.(check int) (name ^ ": branches add up")
        whole.Template.s_branches
        (add (fun s -> s.Template.s_branches)))
    blocks

let test_every_constructor () =
  Alcotest.(check int) "one sample per LIR constructor" 39
    (List.length samples);
  List.iter
    (fun (name, op) ->
      let term = expected_terminator op in
      let falls = expected_falls_through op in
      let code =
        if not falls then [ patch 0 op ]
        else [ patch 2 op; Lir.MovImm (0, 1); Lir.Ret 0 ]
      in
      let pf = Predecode.decode (mk_func code) in
      Alcotest.(check bool) (name ^ ": is_terminator") term
        (Template.is_terminator pf.Predecode.ops.(0));
      Alcotest.(check bool) (name ^ ": falls_through") falls
        (Template.falls_through pf.Predecode.ops.(0));
      match Template.layout pf with
      | None -> Alcotest.failf "%s: layout rejected a well-formed stream" name
      | Some t ->
        check_invariants name pf t;
        if falls then
          (* a terminator opens a leader at pc 1: its block is a singleton;
             a fusible op is folded into one straight-line block *)
          Alcotest.(check int)
            (name ^ ": first block length")
            (if term then 1 else 3)
            t.Template.blocks.(0).Template.b_len)
    samples

let test_pseudo_ops_transparent () =
  (* measurement pseudo-ops contribute nothing to the en-bloc summary *)
  List.iter
    (fun op ->
      let pf = Predecode.decode (mk_func [ op; Lir.Ret 0 ]) in
      let s = Template.summarize pf ~start:0 ~len:1 in
      Alcotest.(check int) "pseudo-op adds no dynamic instruction" 0
        (Array.fold_left ( + ) 0 s.Template.s_by_cat))
    [
      Lir.Profile (1, 0, 0);
      Lir.ProfileStore (1, 0, 0, Lir.Ps_reg 2);
      Lir.ProfileStore (1, 0, 0, Lir.Ps_classid 7);
    ]

let test_layout_rejections () =
  let reject name code ~n_regs ~n_fregs =
    match Template.layout (Predecode.decode (mk_func ~n_regs ~n_fregs code)) with
    | None -> ()
    | Some _ -> Alcotest.failf "%s: layout accepted a stream it must reject" name
  in
  reject "no terminator at the end" [ Lir.MovImm (0, 1) ] ~n_regs:8 ~n_fregs:1;
  reject "fall-through terminator runs off the end"
    [ Lir.Branch (Lir.Eq, 0, Lir.Imm 0, 0) ]
    ~n_regs:8 ~n_fregs:1;
  reject "branch target out of range" [ Lir.Jmp 5 ] ~n_regs:8 ~n_fregs:1;
  reject "int register out of range"
    [ Lir.Mov (0, 99); Lir.Ret 0 ]
    ~n_regs:8 ~n_fregs:1;
  reject "float register out of range"
    [ Lir.FMov (0, 7); Lir.Ret 0 ]
    ~n_regs:8 ~n_fregs:2;
  reject "classid-array index out of range"
    [ Lir.MovClassIDArray (4, 0); Lir.Ret 0 ]
    ~n_regs:8 ~n_fregs:1;
  Alcotest.(check bool) "empty stream" true
    (Template.layout (Predecode.decode (mk_func [])) = None)

(* --- (c) bit-identity on real workloads --- *)

let spot_names =
  [ "richards"; "deltablue"; "crypto-md5"; "splay"; "json-stringify-tinderbox" ]

let workload name =
  match Tce_workloads.Workloads.by_name name with
  | Some w -> w
  | None -> Alcotest.failf "workload %s missing from the registry" name

let no_templates =
  { Tce_engine.Engine.default_config with templates = false }

let test_bit_identity_vs_per_instruction () =
  List.iter
    (fun name ->
      let w = workload name in
      let templated = Runner.run_one w in
      let reference = Runner.run_one ~config:no_templates w in
      Alcotest.(check bool)
        (name ^ ": templated record = per-instruction record")
        true
        (Record.equal_deterministic templated reference))
    spot_names

(* --- (d) profile reconciliation with templates on --- *)

let test_profile_reconciles_with_templates () =
  (* summarize raises unless every simulated cycle and baseline instruction
     lands in exactly one (function, pc, cost) cell; run_pair_profiled
     additionally fails on an off/on checksum mismatch. Default config =
     templates on. *)
  let p = Tce_metrics.Harness.run_pair_profiled (workload "richards") in
  Alcotest.(check string) "profiled the right workload" "richards"
    p.Tce_metrics.Harness.p_name

(* --- (e) shard-merge determinism --- *)

let test_positions_partition () =
  List.iter
    (fun (shards, n) ->
      let all =
        List.concat_map
          (fun shard -> Shard.positions ~shard ~shards ~n)
          (List.init shards (fun i -> i + 1))
      in
      Alcotest.(check (list int))
        (Printf.sprintf "shards=%d n=%d: positions partition the schedule"
           shards n)
        (List.init n Fun.id)
        (List.sort compare all))
    [ (1, 5); (2, 5); (3, 5); (5, 5); (7, 5); (4, 0); (3, 55) ]

let test_merge_rows_order_independent () =
  let rows = [ (0, "a"); (1, "b"); (2, "c"); (3, "d") ] in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun p -> x :: p)
            (permutations (List.filter (fun y -> y <> x) l)))
        l
  in
  List.iter
    (fun perm ->
      match Shard.merge_rows ~what:"row" ~expected:4 perm with
      | Ok merged ->
        Alcotest.(check (list string)) "any completion order, same merge"
          [ "a"; "b"; "c"; "d" ] merged
      | Error e -> Alcotest.failf "merge failed: %s" e)
    (permutations rows)

let test_merge_rows_failures () =
  let fails what rows ~expected =
    match Shard.merge_rows ~what ~expected rows with
    | Ok _ -> Alcotest.failf "%s: merge must fail" what
    | Error e ->
      Alcotest.(check bool) (what ^ ": error names the row kind") true
        (Astring.String.is_infix ~affix:what e)
  in
  fails "missing-row" [ (0, "a"); (2, "c") ] ~expected:3;
  fails "dup-row" [ (0, "a"); (0, "b") ] ~expected:2;
  fails "range-row" [ (5, "a") ] ~expected:2

let test_parse_spec () =
  Alcotest.(check bool) "2/4 parses" true (Shard.parse_spec "2/4" = Ok (2, 4));
  List.iter
    (fun s ->
      match Shard.parse_spec s with
      | Ok _ -> Alcotest.failf "%S must not parse" s
      | Error _ -> ())
    [ "0/4"; "5/4"; "x/4"; "2"; "2/"; "/4"; "-1/4" ]

(* Row envelopes + merge on real records: merging permuted completion
   orders yields the identical normalized run. *)
let test_merged_record_deterministic () =
  let ws = List.map workload [ "richards"; "deltablue"; "crypto-md5" ] in
  let rows =
    List.mapi (fun i w -> (i, Runner.run_one w)) ws
  in
  let through_wire order =
    let rows' =
      List.map
        (fun (i, r) ->
          match
            Result.bind
              (Tce_obs.Json.of_string
                 (Tce_obs.Json.to_string (Record.row_to_json ~index:i r)))
              Record.row_of_json
          with
          | Ok row -> row
          | Error e -> Alcotest.failf "row round-trip: %s" e)
        order
    in
    match Shard.merge_rows ~what:"bench-row" ~expected:(List.length ws) rows' with
    | Error e -> Alcotest.failf "merge: %s" e
    | Ok merged ->
      Record.normalize_run
        (Store.make_run ~shards:2 ~jobs:1 ~host_wall_seconds:1.5 merged)
  in
  let a = through_wire rows
  and b = through_wire (List.rev rows) in
  Alcotest.(check bool) "permuted completion order, identical record" true
    (Record.equal_run a b);
  Alcotest.(check string) "normalized runs serialize identically"
    (Tce_obs.Json.to_string (Record.run_to_json a))
    (Tce_obs.Json.to_string (Record.run_to_json b))

let test_campaign_row_round_trip () =
  let cell =
    {
      Campaign.workload = "richards";
      point = "cc-drop";
      spec = "cc-drop:always";
      seed = 12345;
      fires = 7;
      detections = 0;
      lost_victims = 0;
      delivered_late = 0;
      deopts_delta = 1;
      cycles_delta = -42.5;
      outcome = Campaign.Degraded;
      detail = "";
    }
  in
  match
    Result.bind
      (Tce_obs.Json.of_string
         (Tce_obs.Json.to_string (Campaign.row_to_json ~index:9 cell)))
      Campaign.row_of_json
  with
  | Error e -> Alcotest.failf "fault-cell round-trip: %s" e
  | Ok (i, c) ->
    Alcotest.(check int) "index survives the wire" 9 i;
    Alcotest.(check bool) "cell survives the wire" true (c = cell)

let () =
  Alcotest.run "template+shard"
    [
      ( "layout",
        [
          Alcotest.test_case "every LIR constructor" `Quick
            test_every_constructor;
          Alcotest.test_case "pseudo-ops transparent" `Quick
            test_pseudo_ops_transparent;
          Alcotest.test_case "rejections" `Quick test_layout_rejections;
        ] );
      ( "execution",
        [
          Alcotest.test_case "bit-identity vs per-instruction" `Slow
            test_bit_identity_vs_per_instruction;
          Alcotest.test_case "profile reconciles with templates" `Slow
            test_profile_reconciles_with_templates;
        ] );
      ( "shard",
        [
          Alcotest.test_case "positions partition" `Quick
            test_positions_partition;
          Alcotest.test_case "merge order-independent" `Quick
            test_merge_rows_order_independent;
          Alcotest.test_case "merge failures" `Quick test_merge_rows_failures;
          Alcotest.test_case "parse spec" `Quick test_parse_spec;
          Alcotest.test_case "merged record deterministic" `Slow
            test_merged_record_deterministic;
          Alcotest.test_case "campaign row round-trip" `Quick
            test_campaign_row_round_trip;
        ] );
    ]
