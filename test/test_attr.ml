(* Attribution-layer tests: exhaustive Reason round-trips, the zero-cost
   disabled ledger, ledger content on a forced misspeculation (sites,
   causal chain, re-speculation outcome), ledger/counter reconciliation on
   real workloads, and the attr-report export envelope. *)

module R = Tce_attr.Reason
module L = Tce_attr.Ledger
module A = Tce_attr.Aggregate
module J = Tce_obs.Json
module E = Tce_engine.Engine
module Cat = Tce_jit.Categories

(* --- Reason round-trips --- *)

(* [all_causes] carries one representative payload per constructor; extend
   it so every payload constructor of the parameterized causes appears. *)
let every_cause =
  R.all_causes
  @ [
      R.C_poly_ic R.A_load;
      R.C_poly_ic R.A_store;
      R.C_overflow R.Ov_arith;
      R.C_overflow R.Ov_ushr;
      R.C_overflow R.Ov_negate;
      R.C_overflow R.Ov_abs;
      R.C_cold R.Cold_arith;
      R.C_cold R.Cold_prop_load;
      R.C_cold R.Cold_elem_load;
      R.C_cold R.Cold_prop_store;
      R.C_cold R.Cold_elem_store;
      R.C_cold R.Cold_ctor;
      R.C_cc (R.Cc_prop_store { line = 0; pos = 1 });
      R.C_cc (R.Cc_prop_store { line = 3; pos = 6 });
      R.C_cc R.Cc_elem_store;
      R.C_cc R.Cc_elem_store_slow;
      R.C_cc R.Cc_generic_prop_store;
      R.C_cc R.Cc_generic_elem_store;
      R.C_cc R.Cc_push;
      R.C_osr R.Osr_call;
      R.C_osr R.Osr_ctor;
    ]

let test_reason_string_roundtrip () =
  List.iter
    (fun kind ->
      List.iter
        (fun cause ->
          List.iter
            (fun (pc, classid) ->
              let r = R.make ~classid kind cause ~pc in
              let s = R.to_string r in
              (match R.of_string s with
              | Some r2 ->
                if r2 <> r then
                  Alcotest.failf "string round-trip changed %S -> %S" s
                    (R.to_string r2)
              | None -> Alcotest.failf "of_string failed on %S" s);
              Alcotest.(check bool)
                "describe is non-empty" true
                (String.length (R.describe r) > 0))
            [ (0, -1); (17, 12); (255, 0); (9999, 255) ])
        every_cause)
    R.all_kinds

let test_reason_json_roundtrip () =
  List.iter
    (fun kind ->
      List.iter
        (fun cause ->
          let r = R.make ~classid:7 kind cause ~pc:42 in
          match R.of_json (R.to_json r) with
          | Some r2 ->
            if r2 <> r then
              Alcotest.failf "json round-trip changed %s" (R.to_string r)
          | None -> Alcotest.failf "of_json failed on %s" (R.to_string r))
        every_cause)
    R.all_kinds

let test_reason_garbage_rejected () =
  List.iter
    (fun s ->
      match R.of_string s with
      | None -> ()
      | Some r ->
        Alcotest.failf "parsed garbage %S as %s" s (R.to_string r))
    [ ""; "nonsense"; "check-map"; "check-map:bogus-cause@1#2";
      "bogus-kind:not-class@1#2"; "check-map:not-class@x#2" ]

(* --- the disabled ledger is inert --- *)

let test_null_ledger_inert () =
  Alcotest.(check bool) "null is off" false (L.on L.null);
  L.record_site L.null ~fn:"f" ~pc:0 ~kind:"check-map" L.Removed;
  L.record_deopt L.null ~fn:"f"
    ~reason:(R.make R.K_check_map R.C_not_class ~pc:0);
  L.record_chain L.null ~at:0 ~store:"s" ~classid:1 ~line:0 ~pos:0
    ~victims:[ "f" ];
  L.record_respec L.null ~fn:"f" ~outcome:"reoptimized";
  L.record_pin L.null ~fn:"f" ~exponent:1;
  Alcotest.(check (list pass)) "no sites" [] (L.sites L.null);
  Alcotest.(check (list pass)) "no deopts" [] (L.deopts L.null);
  Alcotest.(check (list pass)) "no chains" [] (L.chains L.null);
  Alcotest.(check bool) "slot_retired always false" false
    (L.slot_retired L.null ~classid:1 ~line:0 ~pos:0)

(* --- engine runs: bit-identical cycles, ledger content --- *)

let deopt_src =
  {|
function Point(x, y) { this.x = x; this.y = y; }
function sum(p, n) {
  var s = 0;
  for (var i = 0; i < n; i++) { s = (s + p.x + p.y + i) & 268435455; }
  return s;
}
var acc = 0;
for (var k = 0; k < 12; k++) {
  acc = (acc + sum(new Point(k, k + 1), 400)) & 268435455;
}
var bad = new Point(0.5, 3);
acc = (acc + sum(bad, 400)) & 268435455;
print(acc);
|}

let run_with attr src =
  let config = { E.default_config with E.attr } in
  let t = E.of_source ~config src in
  E.set_measuring t true;
  ignore (E.run_main t);
  t

let test_attr_does_not_change_cycles () =
  let t_off = run_with L.null deopt_src in
  let ledger = L.create () in
  let t_on = run_with ledger deopt_src in
  Alcotest.(check bool) "ledger saw sites" true (L.sites ledger <> []);
  Alcotest.(check string) "same output" (E.output t_off) (E.output t_on);
  Alcotest.(check int) "same optimized cycles" (E.opt_cycles t_off)
    (E.opt_cycles t_on);
  Alcotest.(check (float 1e-9)) "same baseline cycles"
    (E.baseline_cycles t_off) (E.baseline_cycles t_on)

let test_ledger_content_on_misspeculation () =
  let ledger = L.create () in
  let _t = run_with ledger deopt_src in
  (* sites: sum's property loads speculate during warm-up (removed), and
     the post-misspeculation recompile keeps a check with a named cause *)
  let sites = L.sites ledger in
  Alcotest.(check bool) "some checks removed" true
    (List.exists (fun s -> s.L.decision = L.Removed) sites);
  Alcotest.(check bool) "some checks kept with a cause" true
    (List.exists
       (fun s -> match s.L.decision with L.Kept _ -> true | _ -> false)
       sites);
  (* deopts carry typed reasons *)
  let deopts = L.deopts ledger in
  Alcotest.(check bool) "at least one deopt" true (deopts <> []);
  List.iter
    (fun d ->
      let s = R.to_string d.L.reason in
      match R.of_string s with
      | Some r -> Alcotest.(check string) "lossless" s (R.to_string r)
      | None -> Alcotest.failf "deopt reason does not parse: %s" s)
    deopts;
  (* the double store into Point.x produces a full causal chain *)
  match L.chains ledger with
  | [] -> Alcotest.fail "no CC-exception chain recorded"
  | chain :: _ ->
    Alcotest.(check bool) "chain names sum as a victim" true
      (List.mem "sum" chain.L.victims);
    Alcotest.(check bool) "store rendering non-empty" true
      (String.length chain.L.store > 0);
    (* sum gets hot again and re-optimizes: the chain closes the loop *)
    Alcotest.(check bool) "re-speculation outcome attached" true
      (List.mem_assoc "sum" chain.L.respec);
    (* the cleared slot is observable through slot_retired *)
    Alcotest.(check bool) "slot_retired sees the chain" true
      (L.slot_retired ledger ~classid:chain.L.classid ~line:chain.L.line
         ~pos:chain.L.pos)

(* --- ledger/counter reconciliation on real workloads --- *)

let reconcile_workload name =
  let w =
    match Tce_workloads.Workloads.by_name name with
    | Some w -> w
    | None -> Alcotest.failf "unknown workload %s" name
  in
  let off, on = Tce_metrics.Harness.run_pair w in
  (* Record.of_pair raises on any reconciliation failure (slot 0 non-empty
     or a kind-sum mismatch) — building the record IS the assertion. *)
  let rec_ = Tce_runner.Record.of_pair ~wall_off:0.0 ~wall_on:0.0 off on in
  let sum_off =
    List.fold_left (fun a (_, o, _) -> a + o) 0 rec_.Tce_runner.Record.checks_by_kind
  and sum_on =
    List.fold_left (fun a (_, _, o) -> a + o) 0 rec_.Tce_runner.Record.checks_by_kind
  in
  Alcotest.(check int)
    (name ^ ": kinds sum to checks_off")
    rec_.Tce_runner.Record.checks_off sum_off;
  Alcotest.(check int)
    (name ^ ": kinds sum to checks_on")
    rec_.Tce_runner.Record.checks_on sum_on;
  (* the composition block survives a JSON round-trip *)
  match Tce_runner.Record.workload_of_json (Tce_runner.Record.workload_to_json rec_) with
  | Ok r2 ->
    Alcotest.(check bool)
      (name ^ ": record JSON round-trip")
      true
      (Tce_runner.Record.equal_workload rec_ r2)
  | Error e -> Alcotest.failf "%s: record decode failed: %s" name e

let test_reconciliation () =
  List.iter reconcile_workload
    [ "deltablue"; "splay"; "json-stringify-tinderbox" ]

(* --- aggregate / export envelope --- *)

let test_report_envelope () =
  let ledger = L.create () in
  let t = run_with ledger deopt_src in
  let c = t.E.counters in
  let checks_executed =
    List.map
      (fun k ->
        ( Cat.check_kind_name k,
          c.Tce_machine.Counters.by_check_kind.(Cat.check_kind_index k + 1) ))
      Cat.all_check_kinds
  in
  let doc =
    A.report_json ~program:"deopt_trace" ~checks_executed
      ~cc_occupancy:(Tce_core.Class_cache.set_occupancy t.E.cc)
      ~cc_conflicts:(Tce_core.Class_cache.set_conflicts t.E.cc)
      ledger
  in
  (match Tce_obs.Export.open_document doc with
  | Ok (kind, _) -> Alcotest.(check string) "kind" A.report_kind kind
  | Error e -> Alcotest.fail e);
  (* the explain text names a kept-check cause and the causal chain *)
  let txt =
    A.explain_text ~program:"deopt_trace" ~checks_executed ledger
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Alcotest.(check bool) "explain names a kept cause" true
    (List.exists
       (fun cause -> contains txt (L.keep_cause_name cause))
       L.all_keep_causes);
  Alcotest.(check bool) "explain shows the CC chain" true
    (contains txt "CC exception")

let () =
  Alcotest.run "attr"
    [
      ( "reason",
        [
          Alcotest.test_case "string round-trip (exhaustive)" `Quick
            test_reason_string_roundtrip;
          Alcotest.test_case "json round-trip" `Quick test_reason_json_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick
            test_reason_garbage_rejected;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "null ledger is inert" `Quick test_null_ledger_inert;
          Alcotest.test_case "attribution does not change cycles" `Quick
            test_attr_does_not_change_cycles;
          Alcotest.test_case "misspeculation content" `Quick
            test_ledger_content_on_misspeculation;
        ] );
      ( "reconciliation",
        [ Alcotest.test_case "3 workloads reconcile" `Slow test_reconciliation ]
      );
      ( "report",
        [ Alcotest.test_case "envelope and explain text" `Quick test_report_envelope ]
      );
    ]
