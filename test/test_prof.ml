(* Tests for the cycle-attribution profiler:
   (a) per-category reconciliation on a multi-workload sweep — every
       machine cycle and baseline instruction lands in exactly one cell;
   (b) profiling never changes a simulated number (bit-identity vs the
       unprofiled harness, via run_pair_profiled ~verify);
   (c) the collapsed-stack export round-trips through parse_folded and its
       machine-side counts are exact;
   (d) summaries round-trip through the prof-report JSON;
   (e) the checks-off vs checks-on differential has the right sign — the
       mechanism removes check cycles, it does not add them;
   (f) the gate's host-wall-time warnings fire (and stay non-gating) only
       on >25% regressions over a positive baseline. *)

module P = Tce_prof.Profile
module R = Tce_prof.Report
module H = Tce_metrics.Harness

let workload name =
  match Tce_workloads.Workloads.by_name name with
  | Some w -> w
  | None -> Alcotest.failf "workload %s not in registry" name

(* One profiled pair per workload, shared across tests. [~verify] reruns
   each side unprofiled and fails unless cycles and baseline instructions
   are bit-identical, and summarize itself fails unless the per-category
   sums reconcile exactly — so forcing these lazies is assertions (a) and
   (b) for the named workloads. *)
let sweep_names = [ "richards"; "deltablue"; "splay" ]

let sweep =
  lazy
    (List.map
       (fun n -> (n, H.run_pair_profiled ~verify:true (workload n)))
       sweep_names)

let profiled name = List.assoc name (Lazy.force sweep)

(* --- (a) reconciliation --- *)

let test_reconciliation_sweep () =
  List.iter
    (fun (name, (p : H.profiled)) ->
      List.iter
        (fun (side, (s : P.summary)) ->
          let sum a = Array.fold_left (fun acc (_, v) -> acc + v) 0 a in
          Alcotest.(check int)
            (Printf.sprintf "%s %s: by_cost sums to machine cycles" name side)
            s.P.machine_cycles (sum s.P.by_cost);
          Alcotest.(check int)
            (Printf.sprintf "%s %s: by_label sums to machine cycles" name side)
            s.P.machine_cycles (sum s.P.by_label);
          Alcotest.(check int)
            (Printf.sprintf "%s %s: base_by_label sums to baseline instrs"
               name side)
            s.P.baseline_instrs (sum s.P.base_by_label);
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s %s: total is machine + instrs*cpi" name side)
            (float_of_int s.P.machine_cycles
            +. (float_of_int s.P.baseline_instrs *. s.P.baseline_cpi))
            s.P.total_cycles)
        [ ("off", p.H.p_off); ("on", p.H.p_on) ])
    (Lazy.force sweep);
  (* a fourth profile shape: heavy string/array traffic *)
  ignore (H.run_pair_profiled (workload "json-stringify-tinderbox"))

(* (b) is exercised by ~verify:true inside the sweep: run_pair_profiled
   fails the whole test if any profiled total differs from the unprofiled
   rerun. Forcing the lazy here keeps the assertion visible even if the
   other tests are filtered out. *)
let test_bit_identity () = ignore (Lazy.force sweep)

(* --- (c) collapsed-stack round-trip --- *)

let test_folded_round_trip () =
  let p = profiled "deltablue" in
  List.iter
    (fun (side, folded, (s : P.summary)) ->
      let rows =
        match P.parse_folded folded with
        | Ok rows -> rows
        | Error e -> Alcotest.failf "parse_folded (%s): %s" side e
      in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' folded)
      in
      Alcotest.(check int)
        (side ^ ": one row per line") (List.length lines) (List.length rows);
      List.iter
        (fun (frames, count) ->
          if count <= 0 then Alcotest.failf "%s: non-positive count" side;
          if List.length frames < 3 then
            Alcotest.failf "%s: truncated frame stack" side)
        rows;
      (* machine-side counts are exact cycles: the optimized frames must
         sum back to the machine total (baseline frames are cpi-scaled and
         rounded per cell, so only the machine side is exact) *)
      let machine_sum =
        List.fold_left
          (fun acc (frames, count) ->
            if List.mem "optimized" frames then acc + count else acc)
          0 rows
      in
      Alcotest.(check int)
        (side ^ ": optimized frames sum to machine cycles")
        s.P.machine_cycles machine_sum;
      (* every line carries the root frames, so concatenated runs stay
         distinguishable in one flamegraph *)
      List.iter
        (fun (frames, _) ->
          match frames with
          | "deltablue" :: s2 :: _ when s2 = side -> ()
          | _ -> Alcotest.failf "%s: missing root frames" side)
        rows)
    [
      ("off", p.H.p_folded_off, p.H.p_off);
      ("on", p.H.p_folded_on, p.H.p_on);
    ]

let test_parse_folded_rejects_garbage () =
  (match P.parse_folded "frames-without-count" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a line without a count");
  match P.parse_folded "a;b notanumber" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a non-numeric count"

(* --- (d) JSON round-trips --- *)

let test_summary_json_round_trip () =
  let p = profiled "richards" in
  List.iter
    (fun (s : P.summary) ->
      match P.summary_of_json (P.summary_to_json s) with
      | Error e -> Alcotest.failf "summary_of_json: %s" e
      | Ok s' ->
        Alcotest.(check bool) "summary round-trips" true (s = s'))
    [ p.H.p_off; p.H.p_on ]

let test_suite_doc_round_trip () =
  let pairs =
    List.map
      (fun (name, (p : H.profiled)) ->
        { R.p_name = name; p_off = Some p.H.p_off; p_on = Some p.H.p_on })
      (Lazy.force sweep)
  in
  let doc =
    R.suite_doc ~git_sha:"cafe01" ~config_hash:"deadbeef"
      ~created_utc:"2026-08-08T00:00:00Z" pairs
  in
  (* through text, like the file on disk *)
  match
    Result.bind
      (Tce_obs.Json.of_string (Tce_obs.Json.to_string_pretty doc))
      R.suite_of_json
  with
  | Error e -> Alcotest.failf "suite_of_json: %s" e
  | Ok pairs' ->
    Alcotest.(check bool) "suite round-trips" true (pairs = pairs')

(* --- (e) differential sign --- *)

let test_differential_sign () =
  let p = profiled "richards" in
  let pairs =
    [ { R.p_name = "richards"; p_off = Some p.H.p_off; p_on = Some p.H.p_on } ]
  in
  let deltas = R.label_deltas pairs in
  let delta label =
    match List.assoc_opt label deltas with
    | Some d -> d
    | None -> Alcotest.failf "label %s missing from deltas" label
  in
  (* the mechanism elides map checks wholesale on a monomorphic workload:
     removed cycles are positive by the report's orientation *)
  if delta "check-map" <= 0 then
    Alcotest.failf "check-map delta %d not positive" (delta "check-map");
  let check_total =
    List.fold_left
      (fun acc (label, d) ->
        if String.length label >= 6 && String.sub label 0 6 = "check-" then
          acc + d
        else acc)
      0 deltas
  in
  if check_total <= 0 then
    Alcotest.failf "aggregate check delta %d not positive" check_total;
  (* and the rendered table agrees with the raw totals *)
  let table = R.diff_table pairs in
  Alcotest.(check bool) "table mentions check-map" true
    (Astring.String.is_infix ~affix:"check-map" table)

(* --- (f) gate wall-time warnings --- *)

let mk_rec ?(wall = 0.0) ?(wall_off = 0.0) ?(wall_on = 0.0) name :
    Tce_runner.Record.workload =
  {
    Tce_runner.Record.name;
    suite = "Octane";
    iterations = 10;
    checksum = "0";
    cycles_off = 0.0;
    cycles_on = 0.0;
    whole_cycles_off = 0.0;
    whole_cycles_on = 0.0;
    checks_off = 0;
    checks_on = 0;
    checks_by_kind = [];
    guards_off = 0;
    guards_on = 0;
    deopts_on = 0;
    cc_exceptions_on = 0;
    cc_accesses_on = 0;
    cc_hit_rate_on = 0.0;
    speedup_pct = 0.0;
    check_removal_pct = 0.0;
    wall_seconds = wall;
    wall_seconds_off = wall_off;
    wall_seconds_on = wall_on;
  }

let test_wall_warnings () =
  let module G = Tce_runner.Gate in
  (* >25% on one side warns for that side only *)
  let base = mk_rec ~wall:2.0 ~wall_off:1.0 ~wall_on:1.0 "w" in
  let cur = mk_rec ~wall:2.5 ~wall_off:1.3 ~wall_on:1.2 "w" in
  (match G.wall_warnings base cur with
  | [ w ] ->
    Alcotest.(check bool) "names the off side" true
      (Astring.String.is_infix ~affix:"mechanism off" w);
    Alcotest.(check bool) "marked non-gating" true
      (Astring.String.is_infix ~affix:"non-gating" w)
  | ws -> Alcotest.failf "expected 1 warning, got %d" (List.length ws));
  (* within threshold: silent *)
  Alcotest.(check int) "within 25% is silent" 0
    (List.length
       (G.wall_warnings base (mk_rec ~wall:2.4 ~wall_off:1.2 ~wall_on:1.2 "w")));
  (* v1/v2 baselines decode per-side walls as 0.0: fall back to the pair
     clock, and an all-zero baseline can never warn *)
  (match
     G.wall_warnings (mk_rec ~wall:1.0 "w") (mk_rec ~wall:2.0 "w")
   with
  | [ w ] ->
    Alcotest.(check bool) "pair fallback has no side tag" false
      (Astring.String.is_infix ~affix:"mechanism" w)
  | ws -> Alcotest.failf "expected 1 pair warning, got %d" (List.length ws));
  Alcotest.(check int) "zero baseline never warns" 0
    (List.length (G.wall_warnings (mk_rec "w") (mk_rec ~wall:9.9 "w")))

let test_wall_warnings_non_gating () =
  (* a huge wall regression alone must not fail the gate *)
  let mk ws : Tce_runner.Record.run =
    {
      Tce_runner.Record.schema = Tce_obs.Export.schema_version;
      git_sha = "cafe01";
      config_hash = "deadbeef";
      created_utc = "2026-08-08T00:00:00Z";
      jobs = 1;
      shards = 1;
      host_wall_seconds = List.fold_left (fun a w -> a +. w) 0.0 ws;
      workloads =
        List.map (fun w -> mk_rec ~wall:w ~wall_off:w ~wall_on:w "w") ws;
      quarantined = [];
      resumed_rows = [];
      cache_hits = 0;
      cache_misses = 0;
    }
  in
  let report =
    Tce_runner.Gate.check_run ~baseline:(mk [ 1.0 ]) ~current:(mk [ 10.0 ]) ()
  in
  Alcotest.(check bool) "gate still passes" true report.Tce_runner.Gate.ok;
  Alcotest.(check bool) "but warnings fired" true
    (report.Tce_runner.Gate.warnings <> [])

let () =
  Alcotest.run "tce_prof"
    [
      ( "reconciliation",
        [
          Alcotest.test_case "multi-workload sweep" `Quick
            test_reconciliation_sweep;
          Alcotest.test_case "bit-identical to unprofiled" `Quick
            test_bit_identity;
        ] );
      ( "folded",
        [
          Alcotest.test_case "round-trip" `Quick test_folded_round_trip;
          Alcotest.test_case "rejects garbage" `Quick
            test_parse_folded_rejects_garbage;
        ] );
      ( "json",
        [
          Alcotest.test_case "summary round-trip" `Quick
            test_summary_json_round_trip;
          Alcotest.test_case "suite doc round-trip" `Quick
            test_suite_doc_round_trip;
        ] );
      ( "differential",
        [ Alcotest.test_case "sign" `Quick test_differential_sign ] );
      ( "gate-wall",
        [
          Alcotest.test_case "warnings" `Quick test_wall_warnings;
          Alcotest.test_case "non-gating" `Quick test_wall_warnings_non_gating;
        ] );
    ]
