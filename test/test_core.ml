(* Tests for the paper's core mechanism: Class List, Class Cache, oracle. *)

open Tce_core
module CL = Class_list
module CC = Class_cache

let mk () =
  let mem = Tce_vm.Mem.create () in
  CL.create mem

let smi = Tce_vm.Layout.smi_classid

(* --- Class List semantics (paper Fig. 6) --- *)

let test_first_profile () =
  let cl = mk () in
  (match CL.update cl ~classid:3 ~line:0 ~pos:1 ~value_classid:smi with
  | CL.First_profile -> ()
  | _ -> Alcotest.fail "expected First_profile");
  Alcotest.(check bool) "now monomorphic" true
    (CL.is_monomorphic cl ~classid:3 ~line:0 ~pos:1);
  Alcotest.(check (option int)) "profiled class" (Some smi)
    (CL.profiled_class cl ~classid:3 ~line:0 ~pos:1)

let test_still_mono_and_break () =
  let cl = mk () in
  ignore (CL.update cl ~classid:3 ~line:0 ~pos:1 ~value_classid:7);
  (match CL.update cl ~classid:3 ~line:0 ~pos:1 ~value_classid:7 with
  | CL.Still_mono -> ()
  | _ -> Alcotest.fail "expected Still_mono");
  (match CL.update cl ~classid:3 ~line:0 ~pos:1 ~value_classid:9 with
  | CL.Now_polymorphic { was_speculated = false; _ } -> ()
  | _ -> Alcotest.fail "expected Now_polymorphic without speculation");
  Alcotest.(check bool) "no longer monomorphic" false
    (CL.is_monomorphic cl ~classid:3 ~line:0 ~pos:1);
  (match CL.update cl ~classid:3 ~line:0 ~pos:1 ~value_classid:7 with
  | CL.Already_poly -> ()
  | _ -> Alcotest.fail "expected Already_poly");
  (* the valid bit never comes back, even for matching stores *)
  Alcotest.(check bool) "valid is one-way" false
    (CL.is_valid cl ~classid:3 ~line:0 ~pos:1)

let test_exception_on_speculated_break () =
  let cl = mk () in
  ignore (CL.update cl ~classid:5 ~line:1 ~pos:4 ~value_classid:2);
  CL.add_speculation cl ~classid:5 ~line:1 ~pos:4 ~fn:100;
  CL.add_speculation cl ~classid:5 ~line:1 ~pos:4 ~fn:101;
  match CL.apply cl ~classid:5 ~line:1 ~pos:4 ~value_classid:3 with
  | CL.Now_polymorphic { exception_raised = true; _ }, fns ->
    Alcotest.(check (list int)) "both functions deoptimized" [ 100; 101 ]
      (List.sort compare fns);
    (* the runtime cleared the speculation: a second break is silent *)
    ignore (CL.update cl ~classid:5 ~line:1 ~pos:4 ~value_classid:9);
    let _, fns2 = CL.apply cl ~classid:5 ~line:1 ~pos:4 ~value_classid:11 in
    Alcotest.(check (list int)) "no repeat exception" [] fns2
  | _ -> Alcotest.fail "expected exception with function list"

let test_remove_function () =
  let cl = mk () in
  ignore (CL.update cl ~classid:1 ~line:0 ~pos:1 ~value_classid:2);
  CL.add_speculation cl ~classid:1 ~line:0 ~pos:1 ~fn:42;
  CL.remove_function cl ~fn:42;
  let _, fns = CL.apply cl ~classid:1 ~line:0 ~pos:1 ~value_classid:3 in
  Alcotest.(check (list int)) "stale registration dropped" [] fns

(* --- inheritance + propagation (transition tree) --- *)

let with_tree () =
  let cl = mk () in
  (* class 10 --x--> 11 --y--> 12 *)
  let parent = function 11 -> Some 10 | 12 -> Some 11 | _ -> None in
  let children = function 10 -> [ 11 ] | 11 -> [ 12 ] | _ -> [] in
  cl.CL.parent_of <- parent;
  cl.CL.children_of <- children;
  cl

let test_inherit_profiles () =
  let cl = with_tree () in
  (* the parent profiles slot 1 as SMI before the child materializes *)
  ignore (CL.update cl ~classid:10 ~line:0 ~pos:1 ~value_classid:smi);
  Alcotest.(check (option int)) "child inherits the profile" (Some smi)
    (CL.profiled_class cl ~classid:12 ~line:0 ~pos:1)

let test_propagate_invalidation () =
  let cl = with_tree () in
  ignore (CL.update cl ~classid:10 ~line:0 ~pos:1 ~value_classid:smi);
  (* materialize the child and speculate on it *)
  Alcotest.(check bool) "child mono" true
    (CL.is_monomorphic cl ~classid:12 ~line:0 ~pos:1);
  CL.add_speculation cl ~classid:12 ~line:0 ~pos:1 ~fn:7;
  (* a store to a *parent-classed* object breaks the child's profile too:
     the object may later transition into the child class *)
  let _, fns = CL.apply cl ~classid:10 ~line:0 ~pos:1 ~value_classid:33 in
  Alcotest.(check (list int)) "child speculation deoptimized" [ 7 ] fns;
  Alcotest.(check bool) "child invalidated" false
    (CL.is_valid cl ~classid:12 ~line:0 ~pos:1)

let test_propagation_skips_unmaterialized () =
  let cl = with_tree () in
  ignore (CL.update cl ~classid:10 ~line:0 ~pos:1 ~value_classid:smi);
  ignore (CL.apply cl ~classid:10 ~line:0 ~pos:1 ~value_classid:33);
  (* the child materializes only now — lazily inheriting the *broken* state *)
  Alcotest.(check bool) "lazy child sees invalidation" false
    (CL.is_valid cl ~classid:12 ~line:0 ~pos:1)

let test_retire_value_class () =
  let cl = mk () in
  ignore (CL.update cl ~classid:1 ~line:0 ~pos:2 ~value_classid:20);
  ignore (CL.update cl ~classid:2 ~line:0 ~pos:2 ~value_classid:20);
  ignore (CL.update cl ~classid:3 ~line:0 ~pos:2 ~value_classid:21);
  CL.add_speculation cl ~classid:1 ~line:0 ~pos:2 ~fn:9;
  (* class 20's objects mutated their map in place (elements-kind
     transition): every profile naming 20 must die *)
  let fns = CL.retire_value_class cl ~value_classid:20 in
  Alcotest.(check (list int)) "speculator deoptimized" [ 9 ] fns;
  Alcotest.(check bool) "profile of 20 gone" false
    (CL.is_valid cl ~classid:1 ~line:0 ~pos:2);
  Alcotest.(check bool) "other entry gone too" false
    (CL.is_valid cl ~classid:2 ~line:0 ~pos:2);
  Alcotest.(check bool) "unrelated profile survives" true
    (CL.is_monomorphic cl ~classid:3 ~line:0 ~pos:2)

let prop_valid_monotone =
  (* ValidMap bits are one-way: once cleared, no sequence of stores can set
     them again. *)
  QCheck.Test.make ~name:"ValidMap monotone under random store sequences"
    ~count:300
    QCheck.(list (pair (int_bound 7) (int_bound 5)))
    (fun events ->
      let cl = mk () in
      let ok = ref true in
      List.iter
        (fun (classid, v) ->
          let pos = 1 + (v mod 7) in
          let was_valid = CL.is_valid cl ~classid ~line:0 ~pos in
          ignore (CL.update cl ~classid ~line:0 ~pos ~value_classid:v);
          let now_valid = CL.is_valid cl ~classid ~line:0 ~pos in
          if now_valid && not was_valid then ok := false)
        events;
      !ok)

let prop_classlist_matches_oracle =
  (* The Class List marks a slot monomorphic iff the oracle saw at most one
     distinct value class (on initialized slots, without tree callbacks). *)
  QCheck.Test.make ~name:"Class List agrees with the monomorphism oracle"
    ~count:300
    QCheck.(list (triple (int_bound 3) (int_bound 6) (int_bound 3)))
    (fun events ->
      let cl = mk () in
      let oracle = Oracle.create () in
      List.iter
        (fun (classid, pos0, v) ->
          let pos = 1 + pos0 in
          ignore (CL.update cl ~classid ~line:0 ~pos ~value_classid:v);
          Oracle.record oracle ~classid ~line:0 ~pos ~value_classid:v)
        events;
      List.for_all
        (fun (classid, pos0, _) ->
          let pos = 1 + pos0 in
          CL.is_monomorphic cl ~classid ~line:0 ~pos
          = (Oracle.is_monomorphic oracle ~classid ~line:0 ~pos
            && Oracle.distinct_classes oracle ~classid ~line:0 ~pos >= 1))
        events)

(* --- Class Cache hardware model --- *)

let test_cc_hit_miss () =
  let cl = mk () in
  let cc = CC.create ~config:{ CC.entries = 8; ways = 2 } () in
  let r1 = CC.access cc cl ~classid:1 ~line:0 ~pos:1 ~value_classid:smi in
  Alcotest.(check bool) "cold miss" false r1.CC.hit;
  let r2 = CC.access cc cl ~classid:1 ~line:0 ~pos:1 ~value_classid:smi in
  Alcotest.(check bool) "warm hit" true r2.CC.hit;
  Alcotest.(check int) "accesses" 2 cc.CC.stats.accesses;
  Alcotest.(check int) "hits" 1 cc.CC.stats.hits

let test_cc_eviction_and_writeback () =
  let cl = mk () in
  let cc = CC.create ~config:{ CC.entries = 4; ways = 1 } () in
  (* classes 0..7 with 4 direct-mapped sets: guaranteed conflicts *)
  for c = 0 to 7 do
    ignore (CC.access cc cl ~classid:c ~line:0 ~pos:1 ~value_classid:smi)
  done;
  Alcotest.(check bool) "writebacks happened" true (cc.CC.stats.writebacks > 0);
  (* the profiling state survives eviction (it lives in the Class List) *)
  for c = 0 to 7 do
    Alcotest.(check bool) "state preserved" true
      (CL.is_monomorphic cl ~classid:c ~line:0 ~pos:1)
  done

let test_cc_exception_path () =
  let cl = mk () in
  let cc = CC.create () in
  ignore (CC.access cc cl ~classid:9 ~line:0 ~pos:1 ~value_classid:3);
  CL.add_speculation cl ~classid:9 ~line:0 ~pos:1 ~fn:55;
  let r = CC.access cc cl ~classid:9 ~line:0 ~pos:1 ~value_classid:4 in
  Alcotest.(check bool) "exception" true r.CC.exn_raised;
  Alcotest.(check (list int)) "victims" [ 55 ] r.CC.functions_to_deopt;
  Alcotest.(check int) "counted" 1 cc.CC.stats.exceptions

let test_cc_geometry_validation () =
  Alcotest.(check bool) "entries % ways" true
    (try ignore (CC.create ~config:{ CC.entries = 9; ways = 2 } ()); false
     with Invalid_argument _ -> true)

let test_cc_storage_budget () =
  let cc = CC.create () in
  Alcotest.(check bool) "under 1.5KB (paper §5.4)" true
    (CC.storage_bytes cc <= 1536)

let prop_cc_transparent =
  (* The cache is a pure performance structure: running any event sequence
     through cache+list leaves the list in exactly the state of running it
     through the list alone. *)
  QCheck.Test.make ~name:"Class Cache is semantically transparent" ~count:200
    QCheck.(list (triple (int_bound 5) (int_bound 6) (int_bound 4)))
    (fun events ->
      let cl1 = mk () in
      let cc = CC.create ~config:{ CC.entries = 4; ways = 2 } () in
      let cl2 = mk () in
      List.iter
        (fun (classid, pos0, v) ->
          let pos = 1 + pos0 in
          ignore (CC.access cc cl1 ~classid ~line:0 ~pos ~value_classid:v);
          ignore (CL.apply cl2 ~classid ~line:0 ~pos ~value_classid:v))
        events;
      List.for_all
        (fun (classid, pos0, _) ->
          let pos = 1 + pos0 in
          CL.is_monomorphic cl1 ~classid ~line:0 ~pos
          = CL.is_monomorphic cl2 ~classid ~line:0 ~pos
          && CL.profiled_class cl1 ~classid ~line:0 ~pos
             = CL.profiled_class cl2 ~classid ~line:0 ~pos)
        events)

(* --- oracle --- *)

let test_oracle_basic () =
  let o = Oracle.create () in
  Alcotest.(check bool) "vacuously mono" true
    (Oracle.is_monomorphic o ~classid:1 ~line:0 ~pos:1);
  Oracle.record o ~classid:1 ~line:0 ~pos:1 ~value_classid:5;
  Oracle.record o ~classid:1 ~line:0 ~pos:1 ~value_classid:5;
  Alcotest.(check bool) "one class" true (Oracle.is_monomorphic o ~classid:1 ~line:0 ~pos:1);
  Oracle.record o ~classid:1 ~line:0 ~pos:1 ~value_classid:6;
  Alcotest.(check bool) "two classes" false
    (Oracle.is_monomorphic o ~classid:1 ~line:0 ~pos:1);
  Alcotest.(check int) "distinct" 2 (Oracle.distinct_classes o ~classid:1 ~line:0 ~pos:1)

let test_oracle_retire () =
  let o = Oracle.create () in
  Oracle.record o ~classid:1 ~line:0 ~pos:2 ~value_classid:9;
  Oracle.retire_value_class o ~value_classid:9;
  Alcotest.(check bool) "retired slot is polymorphic" false
    (Oracle.is_monomorphic o ~classid:1 ~line:0 ~pos:2)

let test_oracle_retire_sweep () =
  let o = Oracle.create () in
  Oracle.record o ~classid:1 ~line:0 ~pos:1 ~value_classid:9;
  Oracle.record o ~classid:2 ~line:1 ~pos:3 ~value_classid:9;
  Oracle.record o ~classid:3 ~line:0 ~pos:2 ~value_classid:7;
  Oracle.retire_value_class o ~value_classid:9;
  (* one retirement sweeps every slot naming the class; others untouched *)
  Alcotest.(check bool) "slot 1 polymorphic" false
    (Oracle.is_monomorphic o ~classid:1 ~line:0 ~pos:1);
  Alcotest.(check bool) "slot 2 polymorphic" false
    (Oracle.is_monomorphic o ~classid:2 ~line:1 ~pos:3);
  Alcotest.(check bool) "unrelated slot still mono" true
    (Oracle.is_monomorphic o ~classid:3 ~line:0 ~pos:2);
  Alcotest.(check (list int)) "sentinel recorded" [ -1; 9 ]
    (List.sort compare (Oracle.observed_classes o ~classid:1 ~line:0 ~pos:1));
  (* retiring again is idempotent: no second sentinel *)
  Oracle.retire_value_class o ~value_classid:9;
  Alcotest.(check (list int)) "idempotent" [ -1; 9 ]
    (List.sort compare (Oracle.observed_classes o ~classid:1 ~line:0 ~pos:1));
  (* later stores cannot resurrect monomorphism *)
  Oracle.record o ~classid:1 ~line:0 ~pos:1 ~value_classid:9;
  Alcotest.(check bool) "stays polymorphic" false
    (Oracle.is_monomorphic o ~classid:1 ~line:0 ~pos:1)

let test_claimed_class_peek () =
  let cl = mk () in
  cl.CL.parent_of <- (function 11 -> Some 10 | _ -> None);
  ignore (CL.update cl ~classid:10 ~line:0 ~pos:1 ~value_classid:7);
  (* the claim is inherited through the transition parent without
     materializing the child's entry *)
  Alcotest.(check (option int)) "inherited claim" (Some 7)
    (CL.claimed_class_peek cl ~classid:11 ~line:0 ~pos:1);
  Alcotest.(check bool) "child entry not materialized" true
    (CL.find cl ~classid:11 ~line:0 = None);
  Alcotest.(check (option int)) "uninitialized pos claims nothing" None
    (CL.claimed_class_peek cl ~classid:11 ~line:0 ~pos:2);
  (* breaking the parent profile withdraws the inherited claim *)
  ignore (CL.update cl ~classid:10 ~line:0 ~pos:1 ~value_classid:9);
  Alcotest.(check (option int)) "broken profile claims nothing" None
    (CL.claimed_class_peek cl ~classid:11 ~line:0 ~pos:1)


(* --- additional mechanism cases --- *)

let test_add_speculation_idempotent () =
  let cl = mk () in
  ignore (CL.update cl ~classid:2 ~line:0 ~pos:1 ~value_classid:smi);
  CL.add_speculation cl ~classid:2 ~line:0 ~pos:1 ~fn:5;
  CL.add_speculation cl ~classid:2 ~line:0 ~pos:1 ~fn:5;
  let fns = CL.take_speculators cl ~classid:2 ~line:0 ~pos:1 in
  Alcotest.(check (list int)) "no duplicate registration" [ 5 ] fns;
  (* after draining, the SpeculateMap bit is clear *)
  let e = CL.entry cl ~classid:2 ~line:0 in
  Alcotest.(check int) "speculate map cleared" 0
    (Tce_support.Bytemap.popcount e.CL.speculate_map)

let test_entry_addr_distinct () =
  let cl = mk () in
  let a1 = CL.entry_addr cl ~classid:1 ~line:0 in
  let a2 = CL.entry_addr cl ~classid:1 ~line:1 in
  let a3 = CL.entry_addr cl ~classid:2 ~line:0 in
  Alcotest.(check bool) "addresses distinct" true (a1 <> a2 && a2 <> a3 && a1 <> a3);
  Alcotest.(check int) "entry stride" CL.entry_bytes (a2 - a1)

let test_dump_lists_materialized_entries () =
  let cl = mk () in
  ignore (CL.update cl ~classid:7 ~line:1 ~pos:3 ~value_classid:4);
  let d = CL.dump cl in
  Alcotest.(check bool) "dumped" true
    (List.exists (fun (c, l, _) -> c = 7 && l = 1) d)

let test_cc_sets_spread_classes () =
  (* regression for the set-indexing bug: consecutive ClassIDs must land in
     different sets, not all in set 0 *)
  let cl = mk () in
  let cc = CC.create ~config:{ CC.entries = 64; ways = 2 } () in
  for c = 0 to 31 do
    ignore (CC.access cc cl ~classid:c ~line:0 ~pos:1 ~value_classid:smi)
  done;
  (* warm pass must hit: 32 entries fit 64-entry cache iff well spread *)
  let hits0 = cc.CC.stats.hits in
  for c = 0 to 31 do
    ignore (CC.access cc cl ~classid:c ~line:0 ~pos:1 ~value_classid:smi)
  done;
  Alcotest.(check int) "all warm accesses hit" 32 (cc.CC.stats.hits - hits0)

let test_mass_invalidation () =
  (* one retirement sweeps many speculated entries at once *)
  let cl = mk () in
  for c = 0 to 19 do
    ignore (CL.update cl ~classid:c ~line:0 ~pos:2 ~value_classid:99);
    CL.add_speculation cl ~classid:c ~line:0 ~pos:2 ~fn:(1000 + c)
  done;
  let fns = CL.retire_value_class cl ~value_classid:99 in
  Alcotest.(check int) "all twenty speculators collected" 20 (List.length fns);
  Alcotest.(check bool) "all invalid" true
    (List.for_all
       (fun c -> not (CL.is_valid cl ~classid:c ~line:0 ~pos:2))
       (List.init 20 (fun c -> c)))

let prop_take_speculators_drains =
  QCheck.Test.make ~name:"take_speculators leaves an empty FunctionList"
    ~count:200
    QCheck.(pair (int_bound 7) (list (int_bound 50)))
    (fun (classid, fns) ->
      let cl = mk () in
      ignore (CL.update cl ~classid ~line:0 ~pos:1 ~value_classid:3);
      List.iter (fun fn -> CL.add_speculation cl ~classid ~line:0 ~pos:1 ~fn) fns;
      let got = CL.take_speculators cl ~classid ~line:0 ~pos:1 in
      let again = CL.take_speculators cl ~classid ~line:0 ~pos:1 in
      List.sort_uniq compare got = List.sort_uniq compare fns && again = [])

let () =
  Alcotest.run "core"
    [
      ( "class list",
        [
          Alcotest.test_case "first profile" `Quick test_first_profile;
          Alcotest.test_case "mono then break" `Quick test_still_mono_and_break;
          Alcotest.test_case "exception on speculated break" `Quick
            test_exception_on_speculated_break;
          Alcotest.test_case "remove function" `Quick test_remove_function;
          QCheck_alcotest.to_alcotest prop_valid_monotone;
          QCheck_alcotest.to_alcotest prop_classlist_matches_oracle;
        ] );
      ( "transition tree",
        [
          Alcotest.test_case "profile inheritance" `Quick test_inherit_profiles;
          Alcotest.test_case "invalidation propagates" `Quick
            test_propagate_invalidation;
          Alcotest.test_case "lazy children see breaks" `Quick
            test_propagation_skips_unmaterialized;
          Alcotest.test_case "retire value class" `Quick test_retire_value_class;
          Alcotest.test_case "claimed class peek" `Quick test_claimed_class_peek;
          Alcotest.test_case "speculation idempotent" `Quick
            test_add_speculation_idempotent;
          Alcotest.test_case "entry addresses" `Quick test_entry_addr_distinct;
          Alcotest.test_case "dump" `Quick test_dump_lists_materialized_entries;
          Alcotest.test_case "mass invalidation" `Quick test_mass_invalidation;
          QCheck_alcotest.to_alcotest prop_take_speculators_drains;
        ] );
      ( "class cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cc_hit_miss;
          Alcotest.test_case "eviction/writeback" `Quick
            test_cc_eviction_and_writeback;
          Alcotest.test_case "exception path" `Quick test_cc_exception_path;
          Alcotest.test_case "geometry validation" `Quick test_cc_geometry_validation;
          Alcotest.test_case "storage budget" `Quick test_cc_storage_budget;
          Alcotest.test_case "set spreading (regression)" `Quick
            test_cc_sets_spread_classes;
          QCheck_alcotest.to_alcotest prop_cc_transparent;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "basic" `Quick test_oracle_basic;
          Alcotest.test_case "retire" `Quick test_oracle_retire;
          Alcotest.test_case "retire sweep" `Quick test_oracle_retire_sweep;
        ] );
    ]
