(* Tests for the parallel benchmark runner, the persistent result store and
   the perf-regression gate:
   (a) parallel execution is bit-identical to serial, per workload;
   (b) the gate passes a clean run and fails an injected slowdown (library
       verdicts and end-to-end exit codes);
   (c) run records round-trip through the Tce_obs.Json store format. *)

open Tce_runner

let mk_workload name body =
  Tce_workloads.Workload.make ~suite:Tce_workloads.Workload.Octane
    ~selected:false name body

(* Three small workloads with different profiles: monomorphic properties,
   polymorphic call sites, and array elements — enough to exercise the
   mechanism while keeping the suite fast. *)
let tiny_mono =
  mk_workload "runner-mono"
    {|
function Pt(x, y) { this.x = x; this.y = y; }
function bench() {
  var s = 0;
  for (var i = 0; i < 40; i++) { var p = new Pt(i, i + 1); s = (s + p.x + p.y) & 65535; }
  return s;
}
|}

let tiny_poly =
  mk_workload "runner-poly"
    {|
function A(v) { this.v = v; }
function B(v) { this.v = v; this.w = v; }
var os = array_new(0);
for (var i = 0; i < 30; i++) { if ((i & 1) == 0) { push(os, new A(i)); } else { push(os, new B(i)); } }
function bench() {
  var s = 0;
  for (var i = 0; i < 30; i++) { s = (s + os[i].v) & 65535; }
  return s;
}
|}

let tiny_elems =
  mk_workload "runner-elems"
    {|
var xs = array_new(0);
for (var i = 0; i < 48; i++) { push(xs, i * 3); }
function bench() {
  var s = 0;
  for (var i = 0; i < 48; i++) { s = (s + xs[i]) & 65535; }
  return s;
}
|}

let roster = [ tiny_mono; tiny_poly; tiny_elems ]

let resolve name =
  List.find_opt (fun w -> w.Tce_workloads.Workload.name = name) roster

let serial = lazy (Runner.run_workloads ~jobs:1 roster)

(* --- (a) parallel == serial --- *)

let test_parallel_bit_identical () =
  let s = Lazy.force serial in
  let p = Runner.run_workloads ~jobs:4 roster in
  Alcotest.(check int) "same count" (List.length s) (List.length p);
  List.iter2
    (fun (a : Record.workload) (b : Record.workload) ->
      Alcotest.(check string) "input order preserved" a.Record.name b.Record.name;
      Alcotest.(check bool)
        (Printf.sprintf "%s: parallel record bit-identical to serial"
           a.Record.name)
        true
        (Record.equal_deterministic a b))
    s p

let test_parallel_more_jobs_than_work () =
  (* more domains than workloads must not duplicate or drop work *)
  let p = Runner.run_workloads ~jobs:8 [ tiny_mono ] in
  let s = Runner.run_workloads ~jobs:1 [ tiny_mono ] in
  Alcotest.(check int) "one record" 1 (List.length p);
  Alcotest.(check bool) "identical" true
    (Record.equal_deterministic (List.hd s) (List.hd p))

let test_records_sane () =
  List.iter
    (fun (r : Record.workload) ->
      Alcotest.(check bool) (r.Record.name ^ ": cycles positive") true
        (r.Record.cycles_on > 0.0 && r.Record.cycles_off > 0.0);
      Alcotest.(check bool) (r.Record.name ^ ": removal within [0,100]") true
        (r.Record.check_removal_pct >= 0.0 && r.Record.check_removal_pct <= 100.0);
      Alcotest.(check bool) (r.Record.name ^ ": mechanism removes checks") true
        (r.Record.checks_on <= r.Record.checks_off))
    (Lazy.force serial)

(* --- (b) the gate --- *)

let make_run workloads =
  Store.make_run ~jobs:1 ~host_wall_seconds:0.0 workloads

let test_gate_clean_pass () =
  let run = make_run (Lazy.force serial) in
  let report = Gate.check_run ~baseline:run ~current:run () in
  Alcotest.(check bool) "clean run passes" true report.Gate.ok;
  Alcotest.(check (list string)) "nothing missing" [] report.Gate.missing

let inject_slowdown pct (w : Record.workload) =
  { w with Record.cycles_on = w.Record.cycles_on *. (1.0 +. (pct /. 100.0)) }

let test_gate_fails_on_slowdown () =
  let base = make_run (Lazy.force serial) in
  let current =
    { base with Record.workloads = List.map (inject_slowdown 10.0) base.Record.workloads }
  in
  let report = Gate.check_run ~tolerance_pct:2.0 ~baseline:base ~current () in
  Alcotest.(check bool) "10% slowdown beyond 2% tolerance fails" false
    report.Gate.ok;
  (* only the cycles metric flags, and for every workload *)
  let failing =
    List.filter (fun (v : Gate.verdict) -> not v.Gate.ok) report.Gate.verdicts
  in
  Alcotest.(check int) "one failing verdict per workload" (List.length roster)
    (List.length failing);
  List.iter
    (fun (v : Gate.verdict) ->
      Alcotest.(check bool) "failing metric is cycles" true
        (v.Gate.metric = Gate.Cycles))
    failing

let test_gate_within_tolerance_passes () =
  let base = make_run (Lazy.force serial) in
  let current =
    { base with Record.workloads = List.map (inject_slowdown 1.0) base.Record.workloads }
  in
  let report = Gate.check_run ~tolerance_pct:2.0 ~baseline:base ~current () in
  Alcotest.(check bool) "1% slowdown within 2% tolerance passes" true
    report.Gate.ok

let test_gate_flags_check_removal_drop () =
  let base = make_run (Lazy.force serial) in
  let degrade (w : Record.workload) =
    { w with Record.check_removal_pct = w.Record.check_removal_pct -. 5.0 }
  in
  let current =
    { base with Record.workloads = List.map degrade base.Record.workloads }
  in
  let report = Gate.check_run ~tolerance_pct:2.0 ~baseline:base ~current () in
  Alcotest.(check bool) "removal drop beyond tolerance fails" false
    report.Gate.ok

let test_gate_flags_checksum_change () =
  let base = make_run (Lazy.force serial) in
  let corrupt (w : Record.workload) = { w with Record.checksum = "corrupted" } in
  let current =
    { base with Record.workloads = List.map corrupt base.Record.workloads }
  in
  let report = Gate.check_run ~baseline:base ~current () in
  Alcotest.(check bool) "checksum change fails" false report.Gate.ok

let test_gate_config_mismatch () =
  let base = make_run (Lazy.force serial) in
  let current = { base with Record.config_hash = "0000" } in
  let report = Gate.check_run ~baseline:base ~current () in
  Alcotest.(check bool) "mismatched config hash flagged" true
    report.Gate.config_mismatch;
  Alcotest.(check bool) "and fails the gate" false report.Gate.ok

(* Composition warnings are warn-only: a kind-share shift beyond tolerance
   is reported but never fails the gate. *)
let test_gate_composition_warnings () =
  let base = make_run (Lazy.force serial) in
  Alcotest.(check (list string))
    "clean run has no warnings" []
    (Gate.check_run ~baseline:base ~current:base ()).Gate.warnings;
  (* move kept checks from one kind's column to another, keeping the
     checks_on total (and therefore every hard metric) untouched *)
  let shift (w : Record.workload) =
    match w.Record.checks_by_kind with
    | (k1, o1, n1) :: (k2, o2, n2) :: rest when n1 > 0 ->
      { w with Record.checks_by_kind = (k1, o1, 0) :: (k2, o2, n2 + n1) :: rest }
    | _ -> w
  in
  let current =
    { base with Record.workloads = List.map shift base.Record.workloads }
  in
  let report = Gate.check_run ~tolerance_pct:2.0 ~baseline:base ~current () in
  Alcotest.(check bool) "shift produced warnings" true
    (report.Gate.warnings <> []);
  Alcotest.(check bool) "warnings never fail the gate" true report.Gate.ok

let test_gate_missing_workload () =
  let base = make_run (Lazy.force serial) in
  let current =
    { base with Record.workloads = [ List.hd base.Record.workloads ] }
  in
  let report = Gate.check_run ~baseline:base ~current () in
  Alcotest.(check int) "two workloads missing" 2
    (List.length report.Gate.missing);
  Alcotest.(check bool) "missing workloads fail the gate" false report.Gate.ok

(* End-to-end exit codes through baseline files on disk, exactly as
   bench/main.exe -- --check and tcejs bench-check drive it. *)
let test_gate_exit_codes () =
  let tmp = Filename.temp_file "tce_baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let run = make_run (Lazy.force serial) in
      ignore (Store.save ~latest:tmp ~history:"" run);
      Alcotest.(check int) "clean gate exits 0" 0
        (Gate.run_gate ~baseline_path:tmp ~jobs:2 ~resolve ~save_latest:false ());
      (* bake a baseline that claims we used to be 10% faster *)
      let speedier (w : Record.workload) =
        { w with Record.cycles_on = w.Record.cycles_on *. 0.9 }
      in
      let doctored =
        { run with Record.workloads = List.map speedier run.Record.workloads }
      in
      ignore (Store.save ~latest:tmp ~history:"" doctored);
      Alcotest.(check int) "regressed gate exits 1" 1
        (Gate.run_gate ~baseline_path:tmp ~jobs:2 ~resolve ~save_latest:false ());
      Alcotest.(check int) "unreadable baseline exits 2" 2
        (Gate.run_gate ~baseline_path:"/nonexistent/baseline.json" ~resolve
           ~save_latest:false ()))

(* --- (c) JSON round-trip --- *)

let test_workload_json_round_trip () =
  List.iter
    (fun (w : Record.workload) ->
      match Record.workload_of_json (Record.workload_to_json w) with
      | Ok w' ->
        Alcotest.(check bool) (w.Record.name ^ ": round-trips") true
          (Record.equal_workload w w')
      | Error e -> Alcotest.fail e)
    (Lazy.force serial)

let test_run_json_round_trip_through_text () =
  let run = make_run (Lazy.force serial) in
  let text = Tce_obs.Json.to_string_pretty (Record.run_to_json run) in
  match Tce_obs.Json.of_string text with
  | Error e -> Alcotest.fail e
  | Ok j -> (
    match Record.run_of_json j with
    | Error e -> Alcotest.fail e
    | Ok run' ->
      Alcotest.(check bool) "run survives emit+parse byte round-trip" true
        (Record.equal_run run run'))

let test_store_file_round_trip () =
  let tmp = Filename.temp_file "tce_store" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let run = make_run (Lazy.force serial) in
      ignore (Store.save ~latest:tmp ~history:"" run);
      match Store.load tmp with
      | Error e -> Alcotest.fail e
      | Ok run' ->
        Alcotest.(check bool) "store file round-trips" true
          (Record.equal_run run run'))

let test_rejects_wrong_kind () =
  let doc =
    Tce_obs.Export.document ~kind:"run-stats" (Tce_obs.Json.Obj [])
  in
  match Record.run_of_json doc with
  | Ok _ -> Alcotest.fail "accepted a non-bench-run document"
  | Error e -> Alcotest.(check bool) "error is descriptive" true (e <> "")

let () =
  Alcotest.run "runner"
    [
      ( "parallel",
        [
          Alcotest.test_case "bit-identical to serial" `Quick
            test_parallel_bit_identical;
          Alcotest.test_case "more jobs than work" `Quick
            test_parallel_more_jobs_than_work;
          Alcotest.test_case "records sane" `Quick test_records_sane;
        ] );
      ( "gate",
        [
          Alcotest.test_case "clean pass" `Quick test_gate_clean_pass;
          Alcotest.test_case "fails on slowdown" `Quick
            test_gate_fails_on_slowdown;
          Alcotest.test_case "within tolerance" `Quick
            test_gate_within_tolerance_passes;
          Alcotest.test_case "check-removal drop" `Quick
            test_gate_flags_check_removal_drop;
          Alcotest.test_case "checksum change" `Quick
            test_gate_flags_checksum_change;
          Alcotest.test_case "config mismatch" `Quick test_gate_config_mismatch;
          Alcotest.test_case "composition warnings" `Quick
            test_gate_composition_warnings;
          Alcotest.test_case "missing workload" `Quick
            test_gate_missing_workload;
          Alcotest.test_case "exit codes" `Quick test_gate_exit_codes;
        ] );
      ( "store",
        [
          Alcotest.test_case "workload json round-trip" `Quick
            test_workload_json_round_trip;
          Alcotest.test_case "run json round-trip" `Quick
            test_run_json_round_trip_through_text;
          Alcotest.test_case "file round-trip" `Quick test_store_file_round_trip;
          Alcotest.test_case "rejects wrong kind" `Quick test_rejects_wrong_kind;
        ] );
    ]
