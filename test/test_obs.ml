(* Observability-layer tests: trace ring semantics, the zero-cost disabled
   path, JSON round-tripping of the Chrome sink, snapshot sampling, export
   envelopes, and deopt events (with reasons) from a forced
   misspeculation. *)

module T = Tce_obs.Trace
module J = Tce_obs.Json
module E = Tce_engine.Engine

(* --- trace ring --- *)

let test_ring_wraparound () =
  let tr = T.create ~capacity:4 () in
  for i = 0 to 9 do
    T.emit tr (T.Phase (string_of_int i))
  done;
  Alcotest.(check int) "total" 10 (T.total tr);
  Alcotest.(check int) "dropped" 6 (T.dropped tr);
  let names =
    List.map
      (fun r -> match r.T.ev with T.Phase n -> n | _ -> "?")
      (T.records tr)
  in
  Alcotest.(check (list string)) "oldest first, newest kept"
    [ "6"; "7"; "8"; "9" ] names;
  T.clear tr;
  Alcotest.(check int) "cleared" 0 (T.total tr)

let test_clock_stamps () =
  let tr = T.create () in
  let now = ref 100 in
  T.set_clock tr (fun () -> !now);
  T.emit tr (T.Phase "a");
  now := 250;
  T.emit tr (T.Phase "b");
  match T.records tr with
  | [ a; b ] ->
    Alcotest.(check int) "first stamp" 100 a.T.at;
    Alcotest.(check int) "second stamp" 250 b.T.at
  | _ -> Alcotest.fail "expected two records"

let test_disabled_path () =
  Alcotest.(check bool) "null is off" false (T.on T.null);
  T.emit T.null (T.Phase "ignored");
  T.emit T.null (T.Osr { func = "f"; pc = 3 });
  Alcotest.(check int) "no events recorded" 0 (T.total T.null);
  Alcotest.(check (list pass)) "no records" [] (T.records T.null)

(* An untraced engine run records nothing anywhere (the default config
   shares T.null): the disabled path is observably inert. *)
let test_engine_disabled_zero_events () =
  let t =
    E.of_source "var s = 0; for (var i = 0; i < 100; i++) { s = s + i; } print(s);"
  in
  ignore (E.run_main t);
  Alcotest.(check int) "null trace stayed empty" 0 (T.total T.null)

(* --- deterministic cycles with tracing on vs off --- *)

let deopt_src =
  {|
function Point(x, y) { this.x = x; this.y = y; }
function sum(p, n) {
  var s = 0;
  for (var i = 0; i < n; i++) { s = (s + p.x + p.y + i) & 268435455; }
  return s;
}
var acc = 0;
for (var k = 0; k < 12; k++) {
  acc = (acc + sum(new Point(k, k + 1), 400)) & 268435455;
}
var bad = new Point(0.5, 3);
acc = (acc + sum(bad, 400)) & 268435455;
print(acc);
|}

let run_traced ?(sample = 0) src =
  let trace = T.create () in
  let config =
    { E.default_config with E.trace = trace; obs_sample_cycles = sample }
  in
  let t = E.of_source ~config src in
  E.set_measuring t true;
  ignore (E.run_main t);
  (t, trace)

let test_tracing_does_not_change_cycles () =
  let t_off = E.of_source deopt_src in
  E.set_measuring t_off true;
  ignore (E.run_main t_off);
  let t_on, trace = run_traced ~sample:2048 deopt_src in
  Alcotest.(check bool) "trace saw events" true (T.total trace > 0);
  Alcotest.(check string) "same output" (E.output t_off) (E.output t_on);
  Alcotest.(check int) "same optimized cycles" (E.opt_cycles t_off)
    (E.opt_cycles t_on);
  Alcotest.(check (float 1e-9)) "same baseline cycles"
    (E.baseline_cycles t_off) (E.baseline_cycles t_on)

(* --- deopt events from a forced misspeculation --- *)

let test_deopt_reason_and_pc () =
  let _t, trace = run_traced deopt_src in
  let deopts =
    List.filter_map
      (fun r ->
        match r.T.ev with
        | T.Deopt { reason; func; pc; _ } -> Some (reason, func, pc)
        | _ -> None)
      (T.records trace)
  in
  Alcotest.(check bool) "at least one deopt" true (deopts <> []);
  let tierups =
    List.filter (fun r -> T.kind r.T.ev = "tierup") (T.records trace)
  in
  Alcotest.(check bool) "at least one tierup" true (tierups <> []);
  (* Every traced deopt reason is the canonical rendering of a typed
     Tce_attr.Reason.t — it must parse back losslessly. *)
  List.iter
    (fun (reason, _, _) ->
      match Tce_attr.Reason.of_string reason with
      | Some r ->
        Alcotest.(check string) "reason round-trips" reason
          (Tce_attr.Reason.to_string r)
      | None -> Alcotest.failf "untyped deopt reason in trace: %s" reason)
    deopts;
  match deopts with
  | (reason, func, pc) :: _ ->
    Alcotest.(check bool) "non-empty reason" true (String.length reason > 0);
    Alcotest.(check string) "deopting function" "sum" func;
    Alcotest.(check bool) "valid resume pc" true (pc >= 0)
  | [] -> ()

(* --- snapshot sampling --- *)

let test_snapshot_sampling () =
  let t, _trace = run_traced ~sample:1024 deopt_src in
  let samples = Tce_obs.Snapshot.samples t.E.snap in
  Alcotest.(check bool) "collected samples" true (samples <> []);
  let rec mono = function
    | (a : Tce_obs.Snapshot.sample) :: (b : Tce_obs.Snapshot.sample) :: rest ->
      a.Tce_obs.Snapshot.at <= b.Tce_obs.Snapshot.at && mono (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (mono samples)

(* --- chrome sink parses back --- *)

let test_chrome_parse_back () =
  let t, trace = run_traced ~sample:2048 deopt_src in
  let s =
    Tce_obs.Sink.render ~format:`Chrome
      ~counters:(Tce_telem.Track.chrome_counters t.E.snap)
      trace
  in
  let j =
    match J.of_string s with
    | Ok j -> j
    | Error e -> Alcotest.failf "chrome output does not parse: %s" e
  in
  let events =
    match J.member "traceEvents" j with
    | Some (J.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "has events" true (List.length events > 0);
  let cat_is c e =
    match J.member "cat" e with Some (J.Str x) -> x = c | _ -> false
  in
  Alcotest.(check bool) "has a tierup" true (List.exists (cat_is "tierup") events);
  Alcotest.(check bool) "has a deopt" true (List.exists (cat_is "deopt") events);
  let counters =
    List.filter
      (fun e -> match J.member "ph" e with Some (J.Str "C") -> true | _ -> false)
      events
  in
  Alcotest.(check bool) "has counter samples" true (counters <> []);
  List.iter
    (fun e ->
      match (J.member "name" e, J.member "pid" e, J.member "ph" e) with
      | Some _, Some _, Some _ -> ()
      | _ -> Alcotest.failf "malformed event: %s" (J.to_string e))
    events

let test_jsonl_parse_back () =
  let _t, trace = run_traced deopt_src in
  let lines =
    String.split_on_char '\n' (Tce_obs.Sink.jsonl trace)
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "one line per record" (List.length (T.records trace))
    (List.length lines);
  List.iter
    (fun l ->
      match J.of_string l with
      | Ok j ->
        if J.member "at" j = None || J.member "event" j = None then
          Alcotest.failf "record missing at/event: %s" l
      | Error e -> Alcotest.failf "bad jsonl line: %s (%s)" l e)
    lines

(* --- json / export round trips --- *)

let test_json_roundtrip () =
  let j =
    J.Obj
      [
        ("i", J.Int 42);
        ("neg", J.Int (-7));
        ("f", J.Float 2.5);
        ("s", J.Str "quote \" slash \\ newline \n unicode \xe2\x9c\x93");
        ("b", J.Bool true);
        ("n", J.Null);
        ("l", J.List [ J.Int 1; J.Str "two"; J.Float 3.0 ]);
      ]
  in
  match J.of_string (J.to_string j) with
  | Ok j2 -> Alcotest.(check bool) "roundtrip" true (j = j2)
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e

let test_export_envelope () =
  let doc = Tce_obs.Export.document ~kind:"test" (J.Int 5) in
  (match Tce_obs.Export.open_document doc with
  | Ok ("test", J.Int 5) -> ()
  | Ok _ -> Alcotest.fail "wrong payload"
  | Error e -> Alcotest.fail e);
  match Tce_obs.Export.open_document (J.Obj [ ("schema_version", J.Int 999) ]) with
  | Ok _ -> Alcotest.fail "accepted a future schema"
  | Error _ -> ()

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "clock stamps" `Quick test_clock_stamps;
          Alcotest.test_case "disabled path" `Quick test_disabled_path;
          Alcotest.test_case "engine disabled -> zero events" `Quick
            test_engine_disabled_zero_events;
        ] );
      ( "engine",
        [
          Alcotest.test_case "tracing does not change cycles" `Quick
            test_tracing_does_not_change_cycles;
          Alcotest.test_case "deopt reason and pc" `Quick test_deopt_reason_and_pc;
          Alcotest.test_case "snapshot sampling" `Quick test_snapshot_sampling;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "chrome parse-back" `Quick test_chrome_parse_back;
          Alcotest.test_case "jsonl parse-back" `Quick test_jsonl_parse_back;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "export envelope" `Quick test_export_envelope;
        ] );
    ]
