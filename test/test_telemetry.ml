(* Tests for the fleet-telemetry stack (Tce_telem + Tce_runner.Telem):
   (a) registry semantics — label sets, idempotent registration, kind
       mismatches, histogram buckets;
   (b) OpenMetrics rendering validated by the strict in-repo parser, and
       the parser rejecting malformed expositions;
   (c) worker heartbeat round-trip plus torn-line tolerance (a truncated
       beat must parse as None, never raise);
   (d) status-board degradation: the non-TTY rendering contains no escape
       sequences;
   (e) MAD trend anomaly detection on synthetic histories — an unchanged
       deterministic history yields zero flags, an outlier flags, jitter
       under the relative floor is forgiven;
   (f) the HTTP scrape endpoint served from a live registry;
   (g) supervision with telemetry taps: the merged row set is identical
       with events on vs Supervise.null_events, heartbeat lines in the row
       stream are tolerated, and the written snapshot reconciles completed
       cells with the scheduled total. *)

open Tce_runner
module Registry = Tce_telem.Registry
module Expo = Tce_telem.Expo
module Heartbeat = Tce_telem.Heartbeat
module Board = Tce_telem.Board
module Trends = Tce_telem.Trends

(* --- registry --- *)

let test_registry_counters () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~help:"cells" "tce_test_cells" in
  Registry.inc c;
  Registry.inc ~by:2.0 c;
  Alcotest.(check (option (float 1e-9))) "unlabeled" (Some 3.0)
    (Registry.value c);
  (* label order must not split a series *)
  Registry.inc ~labels:[ ("a", "1"); ("b", "2") ] c;
  Registry.inc ~labels:[ ("b", "2"); ("a", "1") ] c;
  Alcotest.(check (option (float 1e-9)))
    "label order canonical" (Some 2.0)
    (Registry.value ~labels:[ ("a", "1"); ("b", "2") ] c);
  Alcotest.(check (option (float 1e-9)))
    "untouched series" None
    (Registry.value ~labels:[ ("a", "9") ] c);
  (* idempotent same-kind registration returns the same family *)
  let c' = Registry.counter reg "tce_test_cells" in
  Registry.inc c';
  Alcotest.(check (option (float 1e-9))) "same family" (Some 4.0)
    (Registry.value c);
  (try
     ignore (Registry.gauge reg "tce_test_cells");
     Alcotest.fail "kind mismatch accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Registry.counter reg "bad name");
     Alcotest.fail "bad name accepted"
   with Invalid_argument _ -> ());
  (try
     Registry.inc ~by:(-1.0) c;
     Alcotest.fail "negative counter inc accepted"
   with Invalid_argument _ -> ())

let test_registry_null () =
  Alcotest.(check bool) "null disabled" false (Registry.enabled Registry.null);
  let c = Registry.counter Registry.null "tce_test_noop" in
  Registry.inc c;
  Alcotest.(check (option (float 1e-9))) "null value" None (Registry.value c)

let test_histogram () =
  let reg = Registry.create () in
  let h = Registry.histogram reg ~buckets:[ 0.5; 1.0 ] "tce_test_wall" in
  List.iter (Registry.observe h) [ 0.25; 0.75; 3.0 ];
  (match Registry.histogram_stats h with
  | None -> Alcotest.fail "no histogram series"
  | Some (count, sum) ->
    Alcotest.(check int) "count" 3 count;
    Alcotest.(check (float 1e-9)) "sum" 4.0 sum);
  let fams = Expo.Parse.parse (Registry.to_openmetrics reg) in
  let bucket le =
    Expo.Parse.sample_value fams ~family:"tce_test_wall"
      ~sample:"tce_test_wall_bucket" ~labels:[ ("le", le) ]
  in
  Alcotest.(check (option (float 1e-9))) "le=0.5" (Some 1.0) (bucket "0.5");
  Alcotest.(check (option (float 1e-9))) "le=1.0" (Some 2.0) (bucket "1.0");
  Alcotest.(check (option (float 1e-9))) "le=+Inf" (Some 3.0) (bucket "+Inf");
  (try
     ignore (Registry.histogram reg ~buckets:[ 1.0; 0.5 ] "tce_test_bad");
     Alcotest.fail "non-ascending buckets accepted"
   with Invalid_argument _ -> ())

(* --- OpenMetrics rendering and the strict parser --- *)

let test_openmetrics_roundtrip () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~help:"done" "tce_done" in
  let g = Registry.gauge reg ~help:"gauge with \"quotes\"\nand newline" "tce_g" in
  Registry.inc ~labels:[ ("driver", "bench"); ("shard", "1") ] c;
  Registry.inc ~labels:[ ("driver", "bench"); ("shard", "2") ] ~by:4.0 c;
  Registry.set ~labels:[ ("path", "a\\b\"c\nd") ] g 2.5;
  let text = Registry.to_openmetrics reg in
  Alcotest.(check bool) "ends with EOF" true
    (String.length text >= 6
    && String.sub text (String.length text - 6) 6 = "# EOF\n");
  let fams = Expo.Parse.parse text in
  Alcotest.(check int) "two families" 2 (List.length fams);
  Alcotest.(check (option (float 1e-9)))
    "counter sample" (Some 4.0)
    (Expo.Parse.sample_value fams ~family:"tce_done" ~sample:"tce_done_total"
       ~labels:[ ("shard", "2") ]);
  Alcotest.(check (option (float 1e-9)))
    "counter sum" (Some 5.0)
    (Expo.Parse.sum fams ~family:"tce_done" ~sample:"tce_done_total");
  Alcotest.(check (option (float 1e-9)))
    "escaped label round-trip" (Some 2.5)
    (Expo.Parse.sample_value fams ~family:"tce_g" ~sample:"tce_g"
       ~labels:[ ("path", "a\\b\"c\nd") ])

let expect_bad text =
  match Expo.Parse.parse_result text with
  | Ok _ -> Alcotest.failf "parser accepted malformed exposition:\n%s" text
  | Error _ -> ()

let test_parser_rejects () =
  expect_bad "# TYPE a counter\na_total 1\n";
  (* no # EOF *)
  expect_bad "# TYPE a counter\na 1\n# EOF\n";
  (* counter without _total *)
  expect_bad "a_total 1\n# EOF\n";
  (* sample before # TYPE *)
  expect_bad
    "# TYPE h histogram\nh_bucket{le=\"1.0\"} 5\nh_bucket{le=\"+Inf\"} 3\n\
     h_sum 1\nh_count 3\n# EOF\n";
  (* non-cumulative buckets *)
  expect_bad
    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 2\n# EOF\n"
(* _count disagrees with +Inf *)

(* --- heartbeats --- *)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_heartbeat_roundtrip () =
  let path = Filename.temp_file "tce-telem-beat" ".jsonl" in
  let oc = open_out path in
  let e = Heartbeat.emitter ~slot:3 ~total:2 ~out:oc in
  Heartbeat.beat_start e ~index:0 ~name:"cell-0";
  Heartbeat.beat_cell_done e;
  Heartbeat.beat_start e ~index:1 ~name:"cell-1";
  Heartbeat.beat_cell_done e;
  Heartbeat.beat_done e;
  close_out oc;
  let beats =
    List.map
      (fun line ->
        match Heartbeat.of_line line with
        | Some b -> b
        | None -> Alcotest.failf "unparseable beat: %s" line)
      (read_lines path)
  in
  Alcotest.(check int) "beat count" 5 (List.length beats);
  List.iter
    (fun (b : Heartbeat.t) ->
      Alcotest.(check int) "slot" 3 b.Heartbeat.slot;
      Alcotest.(check int) "total" 2 b.Heartbeat.cells_total)
    beats;
  let seqs = List.map (fun (b : Heartbeat.t) -> b.Heartbeat.seq) beats in
  Alcotest.(check bool) "seq strictly increasing" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < 4) seqs) (List.tl seqs));
  let first = List.nth beats 0 and last = List.nth beats 4 in
  Alcotest.(check string) "first names its cell" "cell-0" first.Heartbeat.name;
  Alcotest.(check int) "first in flight" 0 first.Heartbeat.index;
  Alcotest.(check int) "all cells done" 2 last.Heartbeat.cells_done;
  Alcotest.(check int) "idle at the end" (-1) last.Heartbeat.index;
  Sys.remove path

let test_heartbeat_torn () =
  let line =
    Heartbeat.to_line
      {
        Heartbeat.slot = 1;
        seq = 7;
        cells_done = 1;
        cells_total = 4;
        index = 2;
        name = "crypto";
        rate = 0.8;
        at = 1700000000.0;
      }
  in
  (match Heartbeat.of_line line with
  | Some b ->
    Alcotest.(check int) "slot survives" 1 b.Heartbeat.slot;
    Alcotest.(check string) "name survives" "crypto" b.Heartbeat.name
  | None -> Alcotest.fail "complete beat did not parse");
  (* every proper prefix is a torn line: must be None, never an exception *)
  for len = 0 to String.length line - 1 do
    match Heartbeat.of_line (String.sub line 0 len) with
    | None -> ()
    | Some _ -> Alcotest.failf "torn prefix of length %d parsed" len
  done;
  Alcotest.(check bool) "other envelope kinds rejected" true
    (Heartbeat.of_line "{\"schema\":5,\"kind\":\"bench-row\"}" = None)

(* --- status board --- *)

let board_rows =
  [
    {
      Board.r_slot = 1;
      r_state = "run";
      r_cell = "richards";
      r_done = 3;
      r_total = 9;
      r_retries = 0;
      r_rate = 1.5;
    };
    {
      Board.r_slot = 2;
      r_state = "retry";
      r_cell = "";
      r_done = 2;
      r_total = 9;
      r_retries = 1;
      r_rate = 0.0;
    };
  ]

let test_board_render () =
  let plain = Board.render ~tty:false ~summary:"bench 5/18 cells" board_rows in
  Alcotest.(check bool) "no escapes when not a TTY" false
    (String.contains plain '\027');
  Alcotest.(check bool) "single plain line" true
    (String.index_opt plain '\n' = None);
  Alcotest.(check bool) "summary present" true
    Astring.String.(is_infix ~affix:"bench 5/18 cells" plain);
  let tty = Board.render ~tty:true ~summary:"bench 5/18 cells" board_rows in
  Alcotest.(check bool) "TTY frame has per-slot rows" true
    Astring.String.(is_infix ~affix:"richards" tty);
  Alcotest.(check bool) "TTY frame shows retries" true
    Astring.String.(is_infix ~affix:"retries=1" tty)

(* --- trend anomaly detection --- *)

let series ?(flag = true) group metric values =
  {
    Trends.sr_group = group;
    sr_metric = metric;
    sr_unit = "";
    sr_flag = flag;
    sr_points =
      List.mapi
        (fun i v -> { Trends.pt_label = Printf.sprintf "run-%d" i; pt_value = v })
        values;
  }

let test_trends_detect () =
  (* bit-identical deterministic history: zero flags *)
  Alcotest.(check int) "unchanged baseline" 0
    (List.length (Trends.detect [ series "w" "cycles" [ 100.; 100.; 100.; 100.; 100. ] ]));
  (* one outlier over a zero-MAD history flags *)
  let anomalies =
    Trends.detect [ series "w" "cycles" [ 100.; 100.; 100.; 100.; 150. ] ]
  in
  (match anomalies with
  | [ a ] ->
    Alcotest.(check string) "anomaly group" "w" a.Trends.an_group;
    Alcotest.(check string) "anomaly label" "run-4" a.Trends.an_label;
    Alcotest.(check (float 1e-9)) "anomaly value" 150.0 a.Trends.an_value
  | l -> Alcotest.failf "expected exactly one anomaly, got %d" (List.length l));
  (* jitter under the relative floor is forgiven even with zero MAD *)
  Alcotest.(check int) "sub-floor jitter" 0
    (List.length
       (Trends.detect [ series "w" "pct" [ 100.; 100.; 100.; 100.; 100.05 ] ]));
  (* noisy series: a far outlier flags, in-band noise does not *)
  Alcotest.(check int) "noisy outlier" 1
    (List.length
       (Trends.detect [ series "w" "wall" [ 10.; 12.; 11.; 13.; 11.; 60. ] ]));
  (* short and unflagged series are skipped *)
  Alcotest.(check int) "too short" 0
    (List.length (Trends.detect [ series "w" "cycles" [ 1.; 99.; 1. ] ]));
  Alcotest.(check int) "informational series" 0
    (List.length
       (Trends.detect [ series ~flag:false "w" "wall" [ 1.; 1.; 1.; 1.; 99. ] ]))

let test_trends_report () =
  let ss =
    [
      series "richards" "cycles_on" [ 100.; 100.; 100.; 100.; 150. ];
      series ~flag:false "suite" "host_wall_seconds" [ 1.0; 1.1; 0.9; 1.0; 1.2 ];
    ]
  in
  let anomalies = Trends.detect ss in
  let txt = Trends.text_report ~title:"synthetic" ss anomalies in
  Alcotest.(check bool) "text flags the outlier" true
    Astring.String.(is_infix ~affix:"ANOMALY" txt);
  let clean =
    Trends.text_report ~title:"synthetic"
      [ series "w" "cycles" [ 1.; 1.; 1.; 1. ] ]
      []
  in
  Alcotest.(check bool) "clean report says so" true
    Astring.String.(is_infix ~affix:"No anomalies detected." clean);
  let html = Trends.html_dashboard ~title:"a<b" ~generated:"t" ss anomalies in
  Alcotest.(check bool) "sparkline svg" true
    Astring.String.(is_infix ~affix:"<svg" html);
  Alcotest.(check bool) "title escaped" true
    Astring.String.(is_infix ~affix:"a&lt;b" html)

(* --- HTTP scrape endpoint --- *)

let http_get ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = "GET /metrics HTTP/1.0\r\n\r\n" in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      drain ();
      Buffer.contents buf)

let test_serve_metrics () =
  let reg = Registry.create () in
  let c = Registry.counter reg "tce_scraped" in
  Registry.inc ~by:7.0 c;
  match
    Expo.Server.start ~port:0 ~body:(fun () -> Registry.to_openmetrics reg) ()
  with
  | Error e -> Alcotest.failf "scrape endpoint failed to bind: %s" e
  | Ok server ->
    Fun.protect
      ~finally:(fun () -> Expo.Server.stop server)
      (fun () ->
        let response = http_get ~port:(Expo.Server.port server) in
        Alcotest.(check bool) "200 OK" true
          Astring.String.(is_infix ~affix:"200 OK" response);
        Alcotest.(check bool) "openmetrics content type" true
          Astring.String.(is_infix ~affix:"application/openmetrics-text" response);
        let body =
          match Astring.String.cut ~sep:"\r\n\r\n" response with
          | Some (_, body) -> body
          | None -> Alcotest.fail "no header/body separator"
        in
        let fams = Expo.Parse.parse body in
        Alcotest.(check (option (float 1e-9)))
          "scraped value" (Some 7.0)
          (Expo.Parse.sum fams ~family:"tce_scraped" ~sample:"tce_scraped_total"))

(* --- supervision with telemetry taps --- *)

let log_dir =
  Filename.concat (Filename.get_temp_dir_name ()) "tce-telemetry-test-logs"

let cfg =
  {
    Supervise.default_config with
    Supervise.cell_timeout_s = 5.0;
    backoff_base_s = 0.01;
    backoff_cap_s = 0.05;
    verbose = false;
  }

let tasks n =
  List.init n (fun i ->
      {
        Supervise.t_index = i;
        t_name = Printf.sprintf "cell-%d" i;
        t_cost = None;
      })

let parse line =
  match String.index_opt line ':' with
  | None -> Error "no colon"
  | Some k -> (
    match int_of_string_opt (String.sub line 0 k) with
    | Some i -> Ok (i, String.sub line (k + 1) (String.length line - k - 1))
    | None -> Error "bad index")

let to_line i v = Printf.sprintf "%d:%s" i v
let sh script = [| "sh"; "-c"; script |]
let echoes indices = List.map (fun i -> Printf.sprintf "echo %d:v%d" i i) indices

let clean_argv ~slot:_ ~attempt:_ indices =
  sh (String.concat "; " (echoes indices))

let run_sh ?events ~shards ~argv n =
  Supervise.run ~exe:"/bin/sh" ?events ~config:cfg ~shards ~log_dir
    ~argv_of_indices:argv ~parse ~to_line (tasks n)

let rows_t = Alcotest.(list (pair int string))
let sorted o = List.sort compare o.Supervise.rows
let complete n = List.init n (fun i -> (i, Printf.sprintf "v%d" i))

let expect_ok = function
  | Ok o -> o
  | Error e -> Alcotest.failf "supervised run failed: %s" e

let make_telem ?out ~total () =
  match
    Telem.create ~driver:"bench" ~total
      { Telem.out; serve = None; board = false }
  with
  | Ok (Some t) -> t
  | Ok None -> Alcotest.fail "telemetry unexpectedly disabled"
  | Error e -> Alcotest.failf "telemetry setup failed: %s" e

let test_rows_identical_with_telemetry () =
  let plain = expect_ok (run_sh ~shards:2 ~argv:clean_argv 6) in
  let snap = Filename.temp_file "tce-telem-snap" ".prom" in
  let t = make_telem ~out:snap ~total:6 () in
  let observed =
    expect_ok (run_sh ~events:(Telem.events t) ~shards:2 ~argv:clean_argv 6)
  in
  Telem.finish t;
  Sys.remove snap;
  Alcotest.check rows_t "identical row sets" (sorted plain) (sorted observed);
  Alcotest.check rows_t "complete" (complete 6) (sorted observed)

let test_heartbeats_tolerated_in_stream () =
  let beat =
    Heartbeat.to_line
      {
        Heartbeat.slot = 1;
        seq = 0;
        cells_done = 0;
        cells_total = 3;
        index = 0;
        name = "cell-0";
        rate = 0.5;
        at = 0.0;
      }
  in
  let argv ~slot:_ ~attempt:_ indices =
    sh (Printf.sprintf "echo '%s'; %s" beat (String.concat "; " (echoes indices)))
  in
  (* without telemetry the beats are silently skipped, not treated as
     garbage: no kills, full row set *)
  let plain = expect_ok (run_sh ~shards:2 ~argv 6) in
  Alcotest.(check int) "no respawns" 0 plain.Supervise.respawns;
  Alcotest.check rows_t "rows intact" (complete 6) (sorted plain);
  (* with telemetry the beat lands in the worker gauges *)
  let snap = Filename.temp_file "tce-telem-snap" ".prom" in
  let t = make_telem ~out:snap ~total:6 () in
  let observed = expect_ok (run_sh ~events:(Telem.events t) ~shards:2 ~argv 6) in
  Alcotest.check rows_t "rows intact with taps" (complete 6) (sorted observed);
  let fams = Expo.Parse.parse (Telem.snapshot t) in
  Alcotest.(check (option (float 1e-9)))
    "heartbeat rate gauge" (Some 0.5)
    (Expo.Parse.sample_value fams ~family:"tce_worker_cells_per_sec"
       ~sample:"tce_worker_cells_per_sec" ~labels:[ ("shard", "1") ]);
  Telem.finish t;
  Sys.remove snap

let test_snapshot_reconciles () =
  let snap = Filename.temp_file "tce-telem-snap" ".prom" in
  let t = make_telem ~out:snap ~total:8 () in
  let o =
    expect_ok (run_sh ~events:(Telem.events t) ~shards:3 ~argv:clean_argv 8)
  in
  Telem.finish t;
  Alcotest.check rows_t "rows complete" (complete 8) (sorted o);
  let fams = Expo.Parse.parse (read_lines snap |> String.concat "\n" |> fun s -> s ^ "\n") in
  let v family sample labels =
    Expo.Parse.sample_value fams ~family ~sample ~labels
  in
  Alcotest.(check (option (float 1e-9)))
    "scheduled" (Some 8.0)
    (v "tce_cells_scheduled" "tce_cells_scheduled" [ ("driver", "bench") ]);
  Alcotest.(check (option (float 1e-9)))
    "completed reconciles with scheduled" (Some 8.0)
    (Expo.Parse.sum fams ~family:"tce_cells_completed"
       ~sample:"tce_cells_completed_total");
  Alcotest.(check (option (float 1e-9)))
    "eta drained" (Some 0.0)
    (v "tce_run_eta_seconds" "tce_run_eta_seconds" [ ("driver", "bench") ]);
  Sys.remove snap

(* Satellite of the telemetry PR: per-shard stderr logs are captured
   through a parent-side pipe and every line is prefixed with a UTC
   timestamp, so multi-worker logs interleave chronologically. *)
let test_shard_logs_utc_stamped () =
  let argv ~slot:_ ~attempt:_ indices =
    sh
      (Printf.sprintf "echo warn: something odd >&2; %s"
         (String.concat "; " (echoes indices)))
  in
  let o = expect_ok (run_sh ~shards:1 ~argv 2) in
  Alcotest.check rows_t "rows intact" (complete 2) (sorted o);
  let lines = read_lines (Filename.concat log_dir "shard-1.log") in
  Alcotest.(check int) "one stderr line" 1 (List.length lines);
  let line = List.hd lines in
  Alcotest.(check bool) "UTC stamp prefix" true
    (String.length line > 25
    && line.[4] = '-'
    && line.[7] = '-'
    && line.[10] = 'T'
    && line.[23] = 'Z'
    && Astring.String.is_suffix ~affix:"warn: something odd" line)

let () =
  Alcotest.run "telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "counters and labels" `Quick test_registry_counters;
          Alcotest.test_case "null registry" `Quick test_registry_null;
          Alcotest.test_case "histogram buckets" `Quick test_histogram;
        ] );
      ( "openmetrics",
        [
          Alcotest.test_case "render/parse round-trip" `Quick
            test_openmetrics_roundtrip;
          Alcotest.test_case "parser rejects malformed" `Quick
            test_parser_rejects;
        ] );
      ( "heartbeat",
        [
          Alcotest.test_case "emitter round-trip" `Quick test_heartbeat_roundtrip;
          Alcotest.test_case "torn lines degrade to None" `Quick
            test_heartbeat_torn;
        ] );
      ( "board",
        [ Alcotest.test_case "non-TTY degradation" `Quick test_board_render ] );
      ( "trends",
        [
          Alcotest.test_case "MAD detection" `Quick test_trends_detect;
          Alcotest.test_case "reports" `Quick test_trends_report;
        ] );
      ( "expose",
        [ Alcotest.test_case "HTTP scrape" `Quick test_serve_metrics ] );
      ( "supervised",
        [
          Alcotest.test_case "rows identical with telemetry" `Quick
            test_rows_identical_with_telemetry;
          Alcotest.test_case "heartbeats tolerated mid-stream" `Quick
            test_heartbeats_tolerated_in_stream;
          Alcotest.test_case "snapshot reconciles" `Quick
            test_snapshot_reconciles;
          Alcotest.test_case "shard logs UTC-stamped" `Quick
            test_shard_logs_utc_stamped;
        ] );
    ]
