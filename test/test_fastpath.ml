(* Tests for the pre-decoded dispatch fast path and the self-timing
   harness around it:
   (a) Predecode.decode_inst matches independently written expectations
       for every Lir.op constructor (specialized form, baked latencies and
       costs, packed meta bits), and Predecode.decode applies it per pc;
   (b) a spot check of real workloads stays bit-identical to the committed
       results/baseline.json (the full roster is gated by --check);
   (c) the runner's longest-first schedule is the documented permutation
       and never changes results or their order. *)

open Tce_jit
module P = Tce_machine.Predecode
module Costs = Tce_machine.Costs
module C = Categories

(* --- (a) decode_inst vs reference expectations --- *)

(* Constructor-name tag with an exhaustive match: adding a Lir.op
   constructor breaks this function (warning-as-error), which forces the
   coverage list below to grow with the ISA. *)
let op_tag : Lir.op -> string = function
  | Lir.MovImm _ -> "MovImm"
  | Mov _ -> "Mov"
  | Alu (_, _, _, _) -> "Alu"
  | Alu32 _ -> "Alu32"
  | AluOv _ -> "AluOv"
  | Load _ -> "Load"
  | CheckedLoad _ -> "CheckedLoad"
  | LoadIdx _ -> "LoadIdx"
  | Store _ -> "Store"
  | StoreIdx _ -> "StoreIdx"
  | FMov _ -> "FMov"
  | FMovImm _ -> "FMovImm"
  | FLoad _ -> "FLoad"
  | FLoadIdx _ -> "FLoadIdx"
  | FStore _ -> "FStore"
  | FStoreIdx _ -> "FStoreIdx"
  | FAdd _ -> "FAdd"
  | FSub _ -> "FSub"
  | FMul _ -> "FMul"
  | FDiv _ -> "FDiv"
  | FSqrt _ -> "FSqrt"
  | FNeg _ -> "FNeg"
  | FAbs _ -> "FAbs"
  | CvtIF _ -> "CvtIF"
  | TruncFI _ -> "TruncFI"
  | Branch _ -> "Branch"
  | FBranch _ -> "FBranch"
  | Jmp _ -> "Jmp"
  | CallFn _ -> "CallFn"
  | CallRt _ -> "CallRt"
  | CallRtChecked _ -> "CallRtChecked"
  | Ret _ -> "Ret"
  | Deopt _ -> "Deopt"
  | MovClassID _ -> "MovClassID"
  | MovClassIDArray _ -> "MovClassIDArray"
  | StoreClassCache _ -> "StoreClassCache"
  | StoreClassCacheArray _ -> "StoreClassCacheArray"
  | Profile _ -> "Profile"
  | ProfileStore _ -> "ProfileStore"

let get_cost rt = Costs.rt_cost rt
let ck k = C.flag_of_check_kind k

(* (case name, instruction, expected specialized form, expected counter
   class). Latencies and charged costs are literal on purpose: the test
   re-states the executor's contract instead of calling the same helper
   decode_inst uses. *)
let cases =
  [
    ("movimm", Lir.inst C.C_other (Lir.MovImm (3, 42)), P.Pmov_imm (3, 42), P.class_none);
    ("mov", Lir.inst C.C_other (Lir.Mov (1, 2)), P.Pmov (1, 2), P.class_none);
    ( "alu-add-r",
      Lir.inst C.C_other (Lir.Alu (Lir.Add, 1, 2, Lir.Reg 3)),
      P.Palu_r (Lir.Add, 1, 1, 2, 3),
      P.class_none );
    ( "alu-mul-i",
      Lir.inst C.C_other (Lir.Alu (Lir.Mul, 1, 2, Lir.Imm 7)),
      P.Palu_i (Lir.Mul, 3, 1, 2, 7),
      P.class_none );
    ( "alu-div-r",
      Lir.inst C.C_other (Lir.Alu (Lir.Div, 4, 5, Lir.Reg 6)),
      P.Palu_r (Lir.Div, 20, 4, 5, 6),
      P.class_none );
    ( "alu-rem-i",
      Lir.inst C.C_other (Lir.Alu (Lir.Rem, 4, 5, Lir.Imm 3)),
      P.Palu_i (Lir.Rem, 20, 4, 5, 3),
      P.class_none );
    (* 64-bit shifts decode to the dedicated (land 63) form *)
    ( "alu-shl-r",
      Lir.inst C.C_other (Lir.Alu (Lir.Shl, 1, 2, Lir.Reg 3)),
      P.Psh64_r (0, 1, 2, 3),
      P.class_none );
    ( "alu-shr-i",
      Lir.inst C.C_other (Lir.Alu (Lir.Shr, 1, 2, Lir.Imm 5)),
      P.Psh64_i (1, 1, 2, 5),
      P.class_none );
    ( "alu-sar-i",
      Lir.inst C.C_other (Lir.Alu (Lir.Sar, 1, 2, Lir.Imm 3)),
      P.Psh64_i (2, 1, 2, 3),
      P.class_none );
    (* ...but 32-bit shifts keep the plain Alu32 form (int32 wrap) *)
    ( "alu32-shl-i",
      Lir.inst C.C_taguntag (Lir.Alu32 (Lir.Shl, 1, 2, Lir.Imm 4)),
      P.Palu32_i (Lir.Shl, 1, 1, 2, 4),
      P.class_none );
    ( "alu32-and-r",
      Lir.inst C.C_other (Lir.Alu32 (Lir.And, 1, 2, Lir.Reg 3)),
      P.Palu32_r (Lir.And, 1, 1, 2, 3),
      P.class_none );
    ( "aluov-add-r",
      Lir.inst C.C_math (Lir.AluOv (Lir.Add, 1, 2, Lir.Reg 3, 9)),
      P.Paluov_r (Lir.Add, 1, 1, 2, 3, 9),
      P.class_none );
    ( "aluov-mul-i",
      Lir.inst C.C_math (Lir.AluOv (Lir.Mul, 1, 2, Lir.Imm 3, 9)),
      P.Paluov_i (Lir.Mul, 3, 1, 2, 3, 9),
      P.class_none );
    ( "load",
      Lir.inst ~flags:(ck C.Ck_map) C.C_check (Lir.Load (1, 2, 16)),
      P.Pload (1, 2, 16),
      P.class_load );
    ( "checked-load",
      Lir.inst
        ~flags:(ck C.Ck_checked_load lor C.flag_guards_obj_load)
        C.C_check
        (Lir.CheckedLoad (1, 2, 8, 0xABC, 4)),
      P.Pchecked_load (1, 2, 8, 0xABC, 4),
      (* a memory read for dispatch-port purposes, but *not* counted in
         opt_loads: the reference executor classed it as a check op *)
      P.class_none );
    ( "load-idx",
      Lir.inst C.C_other (Lir.LoadIdx (1, 2, 3, 8)),
      P.Pload_idx (1, 2, 3, 8),
      P.class_load );
    ( "store-r",
      Lir.inst C.C_other (Lir.Store (2, 8, Lir.Reg 5)),
      P.Pstore_r (2, 8, 5),
      P.class_store );
    ( "store-i",
      Lir.inst C.C_other (Lir.Store (2, 8, Lir.Imm 7)),
      P.Pstore_i (2, 8, 7),
      P.class_store );
    ( "store-idx-r",
      Lir.inst C.C_other (Lir.StoreIdx (2, 3, 8, Lir.Reg 5)),
      P.Pstore_idx_r (2, 3, 8, 5),
      P.class_store );
    ( "store-idx-i",
      Lir.inst C.C_other (Lir.StoreIdx (2, 3, 8, Lir.Imm 6)),
      P.Pstore_idx_i (2, 3, 8, 6),
      P.class_store );
    (* register/immediate float moves are not FP *operations*: the
       reference executor left them out of opt_fp *)
    ("fmov", Lir.inst C.C_other (Lir.FMov (1, 2)), P.Pfmov (1, 2), P.class_none);
    ( "fmovimm",
      Lir.inst C.C_other (Lir.FMovImm (1, 1.5)),
      P.Pfmov_imm (1, 1.5),
      P.class_none );
    ( "fload",
      Lir.inst C.C_other (Lir.FLoad (1, 2, 8)),
      P.Pfload (1, 2, 8),
      P.class_load );
    ( "fload-idx",
      Lir.inst C.C_other (Lir.FLoadIdx (1, 2, 3, 8)),
      P.Pfload_idx (1, 2, 3, 8),
      P.class_load );
    ( "fstore",
      Lir.inst C.C_other (Lir.FStore (2, 8, 1)),
      P.Pfstore (2, 8, 1),
      P.class_store );
    ( "fstore-idx",
      Lir.inst C.C_other (Lir.FStoreIdx (2, 3, 8, 1)),
      P.Pfstore_idx (2, 3, 8, 1),
      P.class_store );
    ("fadd", Lir.inst C.C_other (Lir.FAdd (1, 2, 3)), P.Pfadd (1, 2, 3), P.class_fp);
    ("fsub", Lir.inst C.C_other (Lir.FSub (1, 2, 3)), P.Pfsub (1, 2, 3), P.class_fp);
    ("fmul", Lir.inst C.C_other (Lir.FMul (1, 2, 3)), P.Pfmul (1, 2, 3), P.class_fp);
    ("fdiv", Lir.inst C.C_other (Lir.FDiv (1, 2, 3)), P.Pfdiv (1, 2, 3), P.class_fp);
    ("fsqrt", Lir.inst C.C_other (Lir.FSqrt (1, 2)), P.Pfsqrt (1, 2), P.class_fp);
    ("fneg", Lir.inst C.C_other (Lir.FNeg (1, 2)), P.Pfneg (1, 2), P.class_fp);
    ("fabs", Lir.inst C.C_other (Lir.FAbs (1, 2)), P.Pfabs (1, 2), P.class_fp);
    ( "cvtif",
      Lir.inst C.C_taguntag (Lir.CvtIF (1, 2)),
      P.Pcvtif (1, 2),
      P.class_fp );
    ( "truncfi",
      Lir.inst C.C_taguntag (Lir.TruncFI (1, 2)),
      P.Ptruncfi (1, 2),
      P.class_fp );
    ( "branch-r",
      Lir.inst C.C_other (Lir.Branch (Lir.Lt, 1, Lir.Reg 2, 7)),
      P.Pbranch_r (Lir.Lt, 1, 2, 7),
      P.class_branch );
    ( "branch-i",
      Lir.inst
        ~flags:(ck C.Ck_smi lor C.flag_guards_obj_load)
        C.C_check
        (Lir.Branch (Lir.Bit_set, 1, Lir.Imm 1, 7)),
      P.Pbranch_i (Lir.Bit_set, 1, 1, 7),
      P.class_branch );
    ( "fbranch",
      Lir.inst C.C_other (Lir.FBranch (Lir.FLt, 1, 2, 7)),
      P.Pfbranch (Lir.FLt, 1, 2, 7),
      P.class_branch );
    ("jmp", Lir.inst C.C_other (Lir.Jmp 3), P.Pjmp 3, P.class_branch);
    (* guest call: charged 8 + 2 instructions per argument *)
    ( "call-fn",
      Lir.inst C.C_other (Lir.CallFn (2, [| 1; 2; 3 |], 4, 5)),
      P.Pcall_fn (2, [| 1; 2; 3 |], 4, 5, 14),
      P.class_none );
    ( "call-rt",
      Lir.inst C.C_other
        (Lir.CallRt (Lir.Rt_to_bool, [| 1 |], [||], Some 2, None)),
      (let c = get_cost Lir.Rt_to_bool in
       P.Pcall_rt (Lir.Rt_to_bool, [| 1 |], [||], 2, -1, c.Costs.instrs, c.Costs.cycles)),
      P.class_none );
    ( "call-rt-none",
      Lir.inst C.C_other (Lir.CallRt (Lir.Rt_fmod, [||], [| 1; 2 |], None, Some 3)),
      (let c = get_cost Lir.Rt_fmod in
       P.Pcall_rt (Lir.Rt_fmod, [||], [| 1; 2 |], -1, 3, c.Costs.instrs, c.Costs.cycles)),
      P.class_none );
    ( "call-rt-chk",
      Lir.inst C.C_other
        (Lir.CallRtChecked (Lir.Rt_generic_get_elem, [| 1; 2 |], None, 3)),
      (let c = get_cost Lir.Rt_generic_get_elem in
       P.Pcall_rt_chk (Lir.Rt_generic_get_elem, [| 1; 2 |], -1, 3, c.Costs.instrs, c.Costs.cycles)),
      P.class_none );
    ("ret", Lir.inst C.C_other (Lir.Ret 1), P.Pret 1, P.class_none);
    (* Deopt is a branch for Lir.is_branch, but the reference executor's
       opt_branches counter only saw Branch/FBranch/Jmp *)
    ("deopt", Lir.inst C.C_check (Lir.Deopt 2), P.Pdeopt 2, P.class_none);
    ( "mov-classid",
      Lir.inst C.C_ccop (Lir.MovClassID 1),
      P.Pmov_classid 1,
      P.class_none );
    ( "mov-classid-arr",
      Lir.inst C.C_ccop (Lir.MovClassIDArray (2, 3)),
      P.Pmov_classid_arr (2, 3),
      P.class_none );
    ( "store-cc-r",
      Lir.inst C.C_ccop (Lir.StoreClassCache (1, 8, Lir.Reg 2, 3)),
      P.Pstore_cc_r (1, 8, 2, 3),
      P.class_store );
    ( "store-cc-i",
      Lir.inst C.C_ccop (Lir.StoreClassCache (1, 8, Lir.Imm 9, 3)),
      P.Pstore_cc_i (1, 8, 9, 3),
      P.class_store );
    ( "store-cca-r",
      Lir.inst C.C_ccop (Lir.StoreClassCacheArray (1, 2, 3, 8, Lir.Reg 4, 5)),
      P.Pstore_cca_r (1, 2, 3, 8, 4, 5),
      P.class_store );
    ( "store-cca-i",
      Lir.inst C.C_ccop (Lir.StoreClassCacheArray (1, 2, 3, 8, Lir.Imm 0, 5)),
      P.Pstore_cca_i (1, 2, 3, 8, 0, 5),
      P.class_store );
    ( "profile",
      Lir.inst C.C_other (Lir.Profile (1, 2, 3)),
      P.Pprofile (1, 2, 3),
      P.class_none );
    ( "profile-store-r",
      Lir.inst C.C_other (Lir.ProfileStore (1, 2, 3, Lir.Ps_reg 4)),
      P.Pprofile_store_r (1, 2, 3, 4),
      P.class_none );
    ( "profile-store-c",
      Lir.inst C.C_other (Lir.ProfileStore (1, 2, 3, Lir.Ps_classid 7)),
      P.Pprofile_store_c (1, 2, 3, 7),
      P.class_none );
  ]

let test_covers_every_constructor () =
  (* [op_tag] is an exhaustive match, so adding a constructor to [Lir.op]
     fails to compile until it is named there; this count then forces a
     coverage case to exist for it too. *)
  let covered =
    List.sort_uniq compare
      (List.map (fun (_, i, _, _) -> op_tag i.Lir.op) cases)
  in
  Alcotest.(check int) "all 39 Lir.op constructors covered" 39
    (List.length covered)

let test_decode_inst () =
  List.iter
    (fun (name, inst, expect_pre, expect_class) ->
      let pre, meta = P.decode_inst inst in
      Alcotest.(check bool) (name ^ ": specialized form") true (pre = expect_pre);
      Alcotest.(check int)
        (name ^ ": category bits")
        (C.index inst.Lir.cat)
        (meta land P.meta_cat_mask);
      Alcotest.(check int)
        (name ^ ": check-kind slot")
        (C.check_kind_slot inst.Lir.flags)
        ((meta lsr P.meta_check_shift) land 0x7);
      Alcotest.(check bool)
        (name ^ ": guards-obj-load bit")
        (inst.Lir.flags land C.flag_guards_obj_load <> 0)
        (meta land P.meta_guards_bit <> 0);
      Alcotest.(check int)
        (name ^ ": counter class") expect_class
        ((meta lsr P.meta_class_shift) land 0x7);
      let expect_kind =
        if Lir.is_memory_read inst.Lir.op then P.kind_load
        else if Lir.is_memory_write inst.Lir.op then P.kind_store
        else P.kind_other
      in
      Alcotest.(check int)
        (name ^ ": dispatch port kind") expect_kind
        ((meta lsr P.meta_kind_shift) land 0x3);
      Alcotest.(check bool)
        (name ^ ": pseudo bit")
        (match inst.Lir.op with
        | Lir.Profile _ | ProfileStore _ -> true
        | _ -> false)
        (meta land P.meta_pseudo_bit <> 0))
    cases

let test_fmovimm_canonicalized () =
  (* float immediates are canonicalized at decode time, so the executor
     never canonicalizes in the loop; NaN payloads collapse to one bit
     pattern *)
  let weird_nan = Int64.float_of_bits 0x7FF0DEAD0000BEEFL in
  match P.decode_inst (Lir.inst C.C_other (Lir.FMovImm (0, weird_nan))) with
  | P.Pfmov_imm (_, x), _ ->
    Alcotest.(check int64) "NaN immediate pre-canonicalized"
      (Int64.bits_of_float (Tce_vm.Fbits.canon weird_nan))
      (Int64.bits_of_float x)
  | _ -> Alcotest.fail "FMovImm did not decode to Pfmov_imm"

let test_decode_func () =
  let code = Array.of_list (List.map (fun (_, i, _, _) -> i) cases) in
  let lf =
    {
      Lir.fn_id = 0;
      opt_id = 424242;
      name = "synthetic";
      code;
      deopts = [||];
      reprs = [||];
      n_regs = 16;
      n_fregs = 8;
      code_addr = 0;
      spec_deps = [];
      invalidated = false;
      deopt_hits = 0;
    }
  in
  let pf = P.decode lf in
  Alcotest.(check bool) "keeps the Lir.func" true (pf.P.lf == lf);
  Alcotest.(check int) "ops per pc" (Array.length code) (Array.length pf.P.ops);
  Alcotest.(check int) "meta per pc" (Array.length code) (Array.length pf.P.meta);
  Array.iteri
    (fun i inst ->
      let pre, meta = P.decode_inst inst in
      Alcotest.(check bool)
        (Printf.sprintf "pc %d: ops matches decode_inst" i)
        true
        (pf.P.ops.(i) = pre);
      Alcotest.(check int) (Printf.sprintf "pc %d: meta matches decode_inst" i)
        meta pf.P.meta.(i))
    code

(* --- (b) spot check against the committed baseline --- *)

(* The full 55-workload roster is gated by `bench/main.exe -- --check`;
   here a 5-workload cross-section (property-heavy, call-heavy, integer,
   float, GC-ish) must be bit-identical to the committed baseline, so a
   fast-path regression fails `dune runtest` without needing the gate. *)
let spot_names = [ "richards"; "deltablue"; "crypto"; "navier-stokes"; "splay" ]

(* dune runtest runs from _build/default/test, where the declared dep
   materializes at ../results/baseline.json; a direct `dune exec` runs
   from the source root, where the committed file is in place. *)
let baseline_path =
  if Sys.file_exists Tce_runner.Store.baseline_path then
    Tce_runner.Store.baseline_path
  else Filename.concat ".." Tce_runner.Store.baseline_path

let test_baseline_spot_check () =
  match Tce_runner.Store.load baseline_path with
  | Error e -> Alcotest.fail ("committed baseline unreadable: " ^ e)
  | Ok base ->
    List.iter
      (fun name ->
        let b =
          match
            List.find_opt
              (fun (w : Tce_runner.Record.workload) ->
                w.Tce_runner.Record.name = name)
              base.Tce_runner.Record.workloads
          with
          | Some b -> b
          | None -> Alcotest.fail (name ^ " not in the committed baseline")
        in
        let w =
          match Tce_workloads.Workloads.by_name name with
          | Some w -> w
          | None -> Alcotest.fail (name ^ " not in the workload registry")
        in
        let cur = Tce_runner.Runner.run_one w in
        Alcotest.(check bool)
          (name ^ ": bit-identical to committed baseline")
          true
          (Tce_runner.Record.equal_deterministic b cur))
      spot_names

(* --- (c) longest-first scheduling --- *)

let test_longest_first_order () =
  let cost = function
    | "a" -> Some 10.0
    | "b" -> None
    | "c" -> Some 30.0
    | "d" -> Some 10.0
    | _ -> Some 1.0
  in
  let order = Tce_runner.Runner.longest_first_order ~cost [ "a"; "b"; "c"; "d"; "e" ] in
  (* unknown first, then 30, then the 10/10 tie in input order, then 1 *)
  Alcotest.(check (list int)) "documented permutation" [ 1; 2; 0; 3; 4 ]
    (Array.to_list order);
  let id = Tce_runner.Runner.longest_first_order ~cost:(fun _ -> None) [ "x"; "y"; "z" ] in
  Alcotest.(check (list int)) "all-unknown keeps input order" [ 0; 1; 2 ]
    (Array.to_list id);
  Alcotest.(check (list int)) "empty roster" []
    (Array.to_list (Tce_runner.Runner.longest_first_order ~cost []))

let tiny name body =
  Tce_workloads.Workload.make ~suite:Tce_workloads.Workload.Octane
    ~selected:false name body

let sched_roster =
  [
    tiny "sched-a"
      {|
function bench() {
  var s = 0;
  for (var i = 0; i < 50; i++) { s = (s + i * 3) & 65535; }
  return s;
}
|};
    tiny "sched-b"
      {|
function Pt(x) { this.x = x; }
function bench() {
  var s = 0;
  for (var i = 0; i < 40; i++) { var p = new Pt(i); s = (s + p.x) & 65535; }
  return s;
}
|};
    tiny "sched-c"
      {|
var xs = array_new(0);
for (var i = 0; i < 32; i++) { push(xs, i); }
function bench() {
  var s = 0;
  for (var i = 0; i < 32; i++) { s = (s + xs[i]) & 65535; }
  return s;
}
|};
  ]

let test_schedule_preserves_results () =
  let plain = Tce_runner.Runner.run_workloads ~jobs:1 sched_roster in
  (* a cost function that reverses the roster: sched-a cheapest *)
  let cost (w : Tce_workloads.Workload.t) =
    match w.Tce_workloads.Workload.name with
    | "sched-a" -> Some 1.0
    | "sched-b" -> Some 2.0
    | _ -> Some 3.0
  in
  let scheduled = Tce_runner.Runner.run_workloads ~jobs:1 ~cost sched_roster in
  Alcotest.(check (list string))
    "results come back in input order"
    (List.map (fun (w : Tce_runner.Record.workload) -> w.Tce_runner.Record.name) plain)
    (List.map (fun (w : Tce_runner.Record.workload) -> w.Tce_runner.Record.name) scheduled);
  List.iter2
    (fun (a : Tce_runner.Record.workload) b ->
      Alcotest.(check bool)
        (a.Tce_runner.Record.name ^ ": schedule never changes simulated numbers")
        true
        (Tce_runner.Record.equal_deterministic a b))
    plain scheduled

let () =
  Alcotest.run "fastpath"
    [
      ( "decode",
        [
          Alcotest.test_case "covers every constructor" `Quick
            test_covers_every_constructor;
          Alcotest.test_case "decode_inst vs reference" `Quick test_decode_inst;
          Alcotest.test_case "float immediates canonicalized" `Quick
            test_fmovimm_canonicalized;
          Alcotest.test_case "decode applies per pc" `Quick test_decode_func;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "5-workload spot check" `Slow
            test_baseline_spot_check;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "longest-first permutation" `Quick
            test_longest_first_order;
          Alcotest.test_case "schedule preserves results" `Quick
            test_schedule_preserves_results;
        ] );
    ]
