(* Tests for the self-healing sharded driver (Tce_runner.Supervise):
   (a) chaos-mode matrix over /bin/sh fake workers — crash, hang, garbage,
       partial final line, unexpected index — each recovered by respawning
       over the missing cells, with the merged row set identical to a
       clean run;
   (b) quarantine semantics: a poison cell is excluded after max_retries
       kills while the rest of the run completes;
   (c) graceful degradation to in-process serial when spawning fails;
   (d) checkpoint/resume: journal replay schedules only the remainder and
       a torn final journal line is dropped;
   (e) EINTR restart in Shard.run_workers under a fast interval timer;
   (f) merge_rows errors that name workloads, quarantine-aware gate, and
       the recovery provenance JSON round-trip;
   (g) end-to-end: bench_parent over the real bench/main.exe with seeded
       chaos, byte-identical to a serial run. *)

open Tce_runner

(* --- sh-based fake workers --- *)

let log_dir =
  Filename.concat (Filename.get_temp_dir_name ()) "tce-supervise-test-logs"

let cfg =
  {
    Supervise.default_config with
    Supervise.cell_timeout_s = 5.0;
    backoff_base_s = 0.01;
    backoff_cap_s = 0.05;
    verbose = false;
  }

let tasks n =
  List.init n (fun i ->
      {
        Supervise.t_index = i;
        t_name = Printf.sprintf "cell-%d" i;
        t_cost = None;
      })

let parse line =
  match String.index_opt line ':' with
  | None -> Error "no colon"
  | Some k -> (
    match int_of_string_opt (String.sub line 0 k) with
    | Some i -> Ok (i, String.sub line (k + 1) (String.length line - k - 1))
    | None -> Error "bad index")

let to_line i v = Printf.sprintf "%d:%s" i v
let sh script = [| "sh"; "-c"; script |]
let echoes indices = List.map (fun i -> Printf.sprintf "echo %d:v%d" i i) indices

let clean_argv ~slot:_ ~attempt:_ indices =
  sh (String.concat "; " (echoes indices))

let run_sh ?spawn ?journal ?serial_run ?resume_rows ?(config = cfg) ~shards
    ~argv n =
  Supervise.run ~exe:"/bin/sh" ?spawn ?journal ?serial_run ?resume_rows
    ~config ~shards ~log_dir ~argv_of_indices:argv ~parse ~to_line (tasks n)

let rows_t = Alcotest.(list (pair int string))
let sorted o = List.sort compare o.Supervise.rows
let complete n = List.init n (fun i -> (i, Printf.sprintf "v%d" i))

let expect_ok = function
  | Ok o -> o
  | Error e -> Alcotest.failf "supervised run failed: %s" e

let test_clean_run () =
  let o = expect_ok (run_sh ~shards:2 ~argv:clean_argv 5) in
  Alcotest.check rows_t "all rows" (complete 5) (sorted o);
  Alcotest.(check int) "no respawns" 0 o.Supervise.respawns;
  Alcotest.(check int) "no quarantine" 0 (List.length o.Supervise.quarantined)

(* Each recoverable failure mode: slot 1's first spawn misbehaves, every
   later spawn is clean — the run must still produce the full row set. *)
let recoverable_argv misbehave ~slot ~attempt indices =
  if slot = 1 && attempt = 0 then sh (misbehave indices)
  else clean_argv ~slot ~attempt indices

let check_recovers name misbehave =
  let argv = recoverable_argv misbehave in
  let o = expect_ok (run_sh ~shards:2 ~argv 5) in
  Alcotest.check rows_t (name ^ ": all rows recovered") (complete 5) (sorted o);
  Alcotest.(check bool) (name ^ ": respawned") true (o.Supervise.respawns >= 1);
  Alcotest.(check int)
    (name ^ ": nothing quarantined")
    0
    (List.length o.Supervise.quarantined)

let test_crash_recovery () =
  check_recovers "crash" (fun indices ->
      match echoes indices with
      | e :: _ -> e ^ "; exit 7"
      | [] -> "exit 7")

let test_sigkill_recovery () =
  check_recovers "sigkill" (fun indices ->
      match echoes indices with
      | e :: _ -> e ^ "; kill -9 $$"
      | [] -> "kill -9 $$")

let test_garbage_recovery () =
  check_recovers "garbage" (fun _ -> "echo not-a-row; exec sleep 60")

let test_unexpected_index_recovery () =
  check_recovers "unexpected-index" (fun _ -> "echo 99:zz; exec sleep 60")

let test_partial_line_recovery () =
  check_recovers "partial-line" (fun indices ->
      Printf.sprintf "printf '%d:half-a-row'" (List.hd indices))

let test_hang_recovery () =
  let argv =
    recoverable_argv (fun indices ->
        match echoes indices with
        | e :: _ -> e ^ "; exec sleep 60"
        | [] -> "exec sleep 60")
  in
  let config = { cfg with Supervise.cell_timeout_s = 1.0 } in
  let o = expect_ok (run_sh ~config ~shards:2 ~argv 5) in
  Alcotest.check rows_t "hang: all rows recovered" (complete 5) (sorted o);
  Alcotest.(check bool) "hang: respawned" true (o.Supervise.respawns >= 1)

let test_poison_quarantine () =
  (* The cell with index 2 kills every worker that reaches it. It must be
     blamed (rows before it are streamed, so it is the head of the dead
     worker's pending list), quarantined after exactly max_retries kills,
     and the other four cells must survive. *)
  let poison = 2 in
  let argv ~slot:_ ~attempt:_ indices =
    let rec pre acc = function
      | [] -> (List.rev acc, false)
      | i :: _ when i = poison -> (List.rev acc, true)
      | i :: rest -> pre (Printf.sprintf "echo %d:v%d" i i :: acc) rest
    in
    let es, poisoned = pre [] indices in
    sh (String.concat "; " (es @ [ (if poisoned then "exit 3" else "exit 0") ]))
  in
  let config = { cfg with Supervise.max_retries = 2 } in
  let o = expect_ok (run_sh ~config ~shards:2 ~argv 5) in
  Alcotest.check rows_t "other rows intact"
    (List.filter (fun (i, _) -> i <> poison) (complete 5))
    (sorted o);
  match o.Supervise.quarantined with
  | [ q ] ->
    Alcotest.(check int) "poison cell" poison q.Supervise.q_index;
    Alcotest.(check string) "named" "cell-2" q.Supervise.q_name;
    Alcotest.(check int) "after max_retries kills" 2 q.Supervise.q_kills
  | qs -> Alcotest.failf "expected 1 quarantined cell, got %d" (List.length qs)

let test_spawn_failure_degrades_serial () =
  let spawn ~exe:_ ~argv:_ ~stdout:_ ~stderr:_ =
    raise (Unix.Unix_error (Unix.EAGAIN, "fork", ""))
  in
  let o =
    expect_ok
      (run_sh ~spawn
         ~serial_run:(fun i -> Printf.sprintf "v%d" i)
         ~shards:2 ~argv:clean_argv 4)
  in
  Alcotest.check rows_t "all rows, in-process" (complete 4) (sorted o);
  Alcotest.(check int) "all degraded" 4 o.Supervise.degraded_serial

let test_spawn_failure_without_fallback_errors () =
  let spawn ~exe:_ ~argv:_ ~stdout:_ ~stderr:_ =
    raise (Unix.Unix_error (Unix.EAGAIN, "fork", ""))
  in
  match run_sh ~spawn ~shards:2 ~argv:clean_argv 4 with
  | Ok _ -> Alcotest.fail "expected an error without serial_run"
  | Error e ->
    Alcotest.(check bool) "names the worker" true
      (Astring.String.is_infix ~affix:"could not be spawned" e)

let test_resume_schedules_remainder () =
  (* Rows 0 and 1 are replayed from a journal (the duplicate and the
     out-of-roster index must be dropped); only 2 and 3 may be scheduled,
     and the journal sink receives the replayed rows first so the new
     journal is a complete checkpoint. *)
  let journaled = ref [] in
  let scheduled = ref [] in
  let argv ~slot ~attempt indices =
    scheduled := indices @ !scheduled;
    clean_argv ~slot ~attempt indices
  in
  let o =
    expect_ok
      (run_sh
         ~journal:(fun l -> journaled := l :: !journaled)
         ~resume_rows:
           [ (0, "v0"); (1, "v1"); (1, "dup-ignored"); (9, "out-of-roster") ]
         ~shards:2 ~argv 4)
  in
  Alcotest.check rows_t "all rows" (complete 4) (sorted o);
  Alcotest.(check (list int)) "resume provenance" [ 0; 1 ] o.Supervise.resumed;
  Alcotest.(check (list int)) "only the remainder scheduled" [ 2; 3 ]
    (List.sort compare !scheduled);
  let lines = List.rev !journaled in
  Alcotest.(check int) "journal is complete" 4 (List.length lines);
  Alcotest.(check (list string)) "replayed rows re-journaled first"
    [ "0:v0"; "1:v1" ]
    [ List.nth lines 0; List.nth lines 1 ]

(* --- the crash-safe journal --- *)

let test_journal_drops_torn_line () =
  let path = Filename.temp_file "tce-journal" ".jsonl" in
  let j = Store.journal_open path in
  Store.journal_append j "one";
  Store.journal_append j "two";
  Store.journal_close j;
  (* simulate a crash mid-append: a final line with no newline *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "torn-fragment";
  close_out oc;
  (match Store.journal_lines path with
  | Ok lines ->
    Alcotest.(check (list string)) "torn final line dropped" [ "one"; "two" ]
      lines
  | Error e -> Alcotest.fail e);
  Sys.remove path

(* --- EINTR restart (Shard.run_workers under a 5ms interval timer) --- *)

let test_run_workers_eintr_restart () =
  let old = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  let set v =
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_interval = v; Unix.it_value = v })
  in
  set 0.005;
  let argv_of_shard k =
    [| "sh"; "-c"; Printf.sprintf "sleep 0.3; echo shard%d" k |]
  in
  let result =
    Fun.protect
      ~finally:(fun () ->
        set 0.0;
        Sys.set_signal Sys.sigalrm old)
      (fun () -> Shard.run_workers ~exe:"/bin/sh" ~argv_of_shard ~shards:2 ~log_dir ())
  in
  match result with
  | Ok lines ->
    Alcotest.(check (list string)) "both workers drained under signal fire"
      [ "shard1"; "shard2" ] (List.sort compare lines)
  | Error e -> Alcotest.failf "run_workers under EINTR: %s" e

(* --- merge_rows diagnostics and quarantine holes --- *)

let test_merge_names_missing () =
  let names i = List.nth_opt [ "fib"; "tak"; "deopt-storm" ] i in
  match Shard.merge_rows ~names ~what:"bench-row" ~expected:3 [ (1, "b") ] with
  | Ok _ -> Alcotest.fail "expected a missing-rows error"
  | Error e ->
    let has affix = Astring.String.is_infix ~affix e in
    Alcotest.(check bool) "names the workloads" true
      (has "fib" && has "deopt-storm");
    Alcotest.(check bool) "keeps the raw indices" true (has "indices 0, 2")

let test_merge_quarantined_holes () =
  match
    Shard.merge_rows ~quarantined:[ 1 ] ~what:"bench-row" ~expected:3
      [ (2, "c"); (0, "a") ]
  with
  | Ok merged ->
    Alcotest.(check (list string)) "quarantined slot skipped, order kept"
      [ "a"; "c" ] merged
  | Error e -> Alcotest.fail e

(* --- quarantine-aware gate --- *)

let mk_workload name body =
  Tce_workloads.Workload.make ~suite:Tce_workloads.Workload.Octane
    ~selected:false name body

let gate_roster =
  [
    mk_workload "sup-a"
      "function bench() { var s = 0; for (var i = 0; i < 20; i++) { s = (s + i) & 255; } return s; }";
    mk_workload "sup-b"
      "function bench() { var s = 1; for (var i = 0; i < 20; i++) { s = (s + i * 2) & 255; } return s; }";
  ]

let test_gate_quarantine_aware () =
  let rows = Runner.run_workloads ~jobs:1 gate_roster in
  let baseline = Store.make_run ~jobs:1 ~host_wall_seconds:0.0 rows in
  let surviving =
    List.filter (fun (r : Record.workload) -> r.Record.name <> "sup-b") rows
  in
  let quarantined =
    [ { Supervise.q_index = 1; q_name = "sup-b"; q_kills = 3; q_reason = "t" } ]
  in
  let current =
    Store.make_run ~jobs:1 ~host_wall_seconds:0.0 ~quarantined surviving
  in
  let report = Gate.check_run ~baseline ~current () in
  Alcotest.(check bool) "quarantine does not fail the gate" true report.Gate.ok;
  Alcotest.(check (list string)) "reported as quarantined" [ "sup-b" ]
    report.Gate.quarantined;
  Alcotest.(check (list string)) "not reported missing" [] report.Gate.missing;
  Alcotest.(check bool) "and it warns" true
    (List.exists
       (fun w -> Astring.String.is_infix ~affix:"quarantined" w)
       report.Gate.warnings);
  (* the same absence without a quarantine record still fails *)
  let bare = Store.make_run ~jobs:1 ~host_wall_seconds:0.0 surviving in
  let report = Gate.check_run ~baseline ~current:bare () in
  Alcotest.(check bool) "unexplained absence still fails" false report.Gate.ok;
  Alcotest.(check (list string)) "as missing" [ "sup-b" ] report.Gate.missing

(* --- recovery provenance JSON round-trip --- *)

let test_record_provenance_roundtrip () =
  let rows = Runner.run_workloads ~jobs:1 gate_roster in
  let quarantined =
    [ { Supervise.q_index = 4; q_name = "poison"; q_kills = 3; q_reason = "r" } ]
  in
  let run =
    Store.make_run ~jobs:1 ~host_wall_seconds:0.0 ~quarantined
      ~resumed_rows:[ 0; 2 ] rows
  in
  (match Record.run_of_json (Record.run_to_json run) with
  | Ok back ->
    Alcotest.(check bool) "round-trips" true (Record.equal_run run back)
  | Error e -> Alcotest.fail e);
  (* a clean run's document must not mention the recovery fields at all,
     so pre-supervision baselines keep their bytes *)
  let clean = Store.make_run ~jobs:1 ~host_wall_seconds:0.0 rows in
  let s = Tce_obs.Json.to_string (Record.run_to_json clean) in
  Alcotest.(check bool) "clean run omits quarantined" false
    (Astring.String.is_infix ~affix:"quarantined" s);
  Alcotest.(check bool) "clean run omits resumed_rows" false
    (Astring.String.is_infix ~affix:"resumed_rows" s);
  (* normalize keeps the quarantine (it changes the result set) and drops
     the resume provenance (the rows are identical either way) *)
  let n = Record.normalize_run run in
  Alcotest.(check int) "normalize keeps quarantine" 1
    (List.length n.Record.quarantined);
  Alcotest.(check (list int)) "normalize drops resume" [] n.Record.resumed_rows

(* --- chaos spec parsing and deterministic arming --- *)

let test_chaos_parse () =
  (match Supervise.Chaos.parse "sigkill-after:2" with
  | Ok c ->
    Alcotest.(check string) "round-trips" "sigkill-after:2"
      (Supervise.Chaos.to_string c)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" bad)
        true
        (Result.is_error (Supervise.Chaos.parse bad)))
    [ "bogus:1"; "crash-after"; "crash-after:-1"; "crash-after:x" ]

let test_chaos_arms_one_first_wave_worker () =
  let assignment = [| [ 0; 2 ]; [ 1; 3 ] |] in
  let args slot attempt =
    Supervise.Chaos.worker_args ~mode:Supervise.Chaos.Sigkill_after ~seed:42
      ~assignment ~slot ~attempt
  in
  let armed = List.filter_map (fun s -> args s 0) [ 1; 2 ] in
  Alcotest.(check int) "exactly one first-wave worker armed" 1
    (List.length armed);
  Alcotest.(check bool) "respawns are never armed" true
    (args 1 1 = None && args 2 1 = None);
  (* poison arms every attempt with the same doomed cell *)
  let p attempt =
    Supervise.Chaos.worker_args ~mode:Supervise.Chaos.Poison ~seed:42
      ~assignment ~slot:1 ~attempt
  in
  Alcotest.(check bool) "poison is persistent across attempts" true
    (p 0 = p 3 && p 0 <> None || p 0 = None)

(* --- end-to-end over the real bench binary --- *)

(* Resolved relative to this test binary, not the cwd, so the suite works
   both under `dune runtest` (cwd _build/default/test) and `dune exec`
   from the repo root. A missing exe must fail loudly: spawn failure would
   otherwise degrade to in-process serial and mask the chaos path. *)
let bench_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bench/main.exe"

let require_bench_exe () =
  if not (Sys.file_exists bench_exe) then
    Alcotest.failf "bench binary not found at %s" bench_exe

let e2e_roster =
  List.filter_map Tce_workloads.Workloads.by_name
    [ "controlflow-recursive"; "deopt-storm"; "stanford-crypto-ccm";
      "date-format-xparb" ]

let e2e_cfg =
  { cfg with Supervise.cell_timeout_s = 120.0; backoff_base_s = 0.01 }

let normalized_json r =
  Tce_obs.Json.to_string (Record.run_to_json (Record.normalize_run r))

let e2e_serial = lazy (Runner.run_suite ~jobs:1 e2e_roster)

let tmp_journal () = Filename.temp_file "tce-bench-journal" ".jsonl"

let test_e2e_chaos_sigkill_byte_identical () =
  require_bench_exe ();
  let serial = Lazy.force e2e_serial in
  let sup =
    Shard.bench_parent ~exe:bench_exe ~log_dir ~supervise:e2e_cfg
      ~journal_path:(tmp_journal ())
      ~chaos:(Supervise.Chaos.Sigkill_after, 7) ~shards:2 ~worker_args:[]
      e2e_roster
  in
  Alcotest.(check string) "chaos-recovered run byte-identical to serial"
    (normalized_json serial) (normalized_json sup)

let test_e2e_poison_quarantines () =
  require_bench_exe ();
  let sup =
    Shard.bench_parent ~exe:bench_exe ~log_dir
      ~supervise:{ e2e_cfg with Supervise.max_retries = 1 }
      ~journal_path:(tmp_journal ())
      ~chaos:(Supervise.Chaos.Poison, 7) ~shards:2 ~worker_args:[] e2e_roster
  in
  Alcotest.(check int) "one cell quarantined" 1
    (List.length sup.Record.quarantined);
  Alcotest.(check int) "the other three rows intact" 3
    (List.length sup.Record.workloads)

let test_e2e_resume_from_truncated_journal () =
  require_bench_exe ();
  let serial = Lazy.force e2e_serial in
  let journal_path = tmp_journal () in
  let full =
    Shard.bench_parent ~exe:bench_exe ~log_dir ~supervise:e2e_cfg ~journal_path
      ~shards:2 ~worker_args:[] e2e_roster
  in
  Alcotest.(check string) "full supervised run byte-identical"
    (normalized_json serial) (normalized_json full);
  (* keep two complete rows plus a torn fragment, as a parent crash would *)
  let lines =
    match Store.journal_lines journal_path with
    | Ok (a :: b :: _) -> [ a; b ]
    | Ok _ -> Alcotest.fail "journal too short"
    | Error e -> Alcotest.fail e
  in
  let truncated = Filename.temp_file "tce-bench-journal-torn" ".jsonl" in
  let oc = open_out truncated in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  output_string oc "{\"torn";
  close_out oc;
  let resumed =
    Shard.bench_parent ~exe:bench_exe ~log_dir ~supervise:e2e_cfg
      ~journal_path:(tmp_journal ()) ~resume:truncated ~shards:2
      ~worker_args:[] e2e_roster
  in
  Alcotest.(check string) "resumed run byte-identical to serial"
    (normalized_json serial) (normalized_json resumed)

let () =
  Alcotest.run "supervise"
    [
      ( "worker-pool",
        [
          Alcotest.test_case "clean supervised run" `Quick test_clean_run;
          Alcotest.test_case "crash recovery" `Quick test_crash_recovery;
          Alcotest.test_case "sigkill recovery" `Quick test_sigkill_recovery;
          Alcotest.test_case "garbage-line recovery" `Quick
            test_garbage_recovery;
          Alcotest.test_case "unexpected-index recovery" `Quick
            test_unexpected_index_recovery;
          Alcotest.test_case "partial-final-line recovery" `Quick
            test_partial_line_recovery;
          Alcotest.test_case "hang recovery (deadline)" `Quick
            test_hang_recovery;
          Alcotest.test_case "poison cell quarantines" `Quick
            test_poison_quarantine;
          Alcotest.test_case "spawn failure degrades to serial" `Quick
            test_spawn_failure_degrades_serial;
          Alcotest.test_case "spawn failure without fallback errors" `Quick
            test_spawn_failure_without_fallback_errors;
          Alcotest.test_case "resume schedules only the remainder" `Quick
            test_resume_schedules_remainder;
        ] );
      ( "journal",
        [
          Alcotest.test_case "torn final line dropped" `Quick
            test_journal_drops_torn_line;
        ] );
      ( "eintr",
        [
          Alcotest.test_case "run_workers survives interval timer" `Quick
            test_run_workers_eintr_restart;
        ] );
      ( "merge",
        [
          Alcotest.test_case "missing rows named" `Quick
            test_merge_names_missing;
          Alcotest.test_case "quarantined holes skipped" `Quick
            test_merge_quarantined_holes;
        ] );
      ( "gate",
        [
          Alcotest.test_case "quarantine warns, does not fail" `Quick
            test_gate_quarantine_aware;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "JSON round-trip + clean-run bytes" `Quick
            test_record_provenance_roundtrip;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "spec parsing" `Quick test_chaos_parse;
          Alcotest.test_case "deterministic arming" `Quick
            test_chaos_arms_one_first_wave_worker;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "chaos sigkill byte-identical" `Slow
            test_e2e_chaos_sigkill_byte_identical;
          Alcotest.test_case "poison quarantines, rest intact" `Slow
            test_e2e_poison_quarantines;
          Alcotest.test_case "resume from truncated journal" `Slow
            test_e2e_resume_from_truncated_journal;
        ] );
    ]
