(* Fault-layer tests: spec parsing, injector determinism, the zero-cost
   disabled path (simulated cycles bit-identical with the injector absent,
   and with an armed-but-inert injector), retire-path detection of lost
   deopts and dropped profiling updates (outputs must equal the checks-on
   reference), and deopt-storm backoff + recovery. *)

module E = Tce_engine.Engine
module T = Tce_obs.Trace
module Spec = Tce_fault.Spec
module Point = Tce_fault.Point
module Injector = Tce_fault.Injector

(* --- spec parsing --- *)

let test_spec_roundtrip () =
  List.iter
    (fun s ->
      match Spec.parse s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok spec ->
        Alcotest.(check string) ("roundtrip " ^ s) s (Spec.to_string spec))
    [
      "lost-deopt:0.5";
      "cc-evict:0.02,cc-drop:0.05";
      "cc-delay:0.5:3";
      "cc-delay@7";
      "osr-fail";
    ];
  (* the default campaign spec round-trips too *)
  (match Spec.parse (Spec.to_string Spec.default) with
  | Ok spec ->
    Alcotest.(check string) "default roundtrips"
      (Spec.to_string Spec.default) (Spec.to_string spec)
  | Error e -> Alcotest.failf "default spec does not reparse: %s" e);
  List.iter
    (fun s ->
      match Spec.parse s with
      | Ok _ -> Alcotest.failf "parse %s should have failed" s
      | Error _ -> ())
    [ "no-such-point"; "cc-evict:1.5"; "cc-evict:0.1,cc-evict:0.2"; "cc-evict@0" ]

(* --- injector determinism --- *)

let draw_sequence ~seed n =
  let inj =
    Injector.create ~seed
      [ { Spec.point = Point.Cc_evict; trigger = Spec.Prob 0.3; param = None } ]
  in
  List.init n (fun _ -> Injector.fire inj Point.Cc_evict)

let test_injector_deterministic () =
  let a = draw_sequence ~seed:42 200 and b = draw_sequence ~seed:42 200 in
  Alcotest.(check (list bool)) "same seed, same schedule" a b;
  let c = draw_sequence ~seed:43 200 in
  Alcotest.(check bool) "different seed, different schedule" true (a <> c);
  let inj =
    Injector.create ~seed:1
      [ { Spec.point = Point.Osr_fail; trigger = Spec.At 3; param = None } ]
  in
  let hits = List.init 5 (fun _ -> Injector.fire inj Point.Osr_fail) in
  Alcotest.(check (list bool)) "one-shot fires exactly on the 3rd"
    [ false; false; true; false; false ] hits;
  Alcotest.(check int) "opportunities counted" 5
    (Injector.opportunities inj Point.Osr_fail)

(* --- the zero-cost disabled path --- *)

(* A program whose speculation genuinely breaks (a Point with a double .x
   after 12 SMI Points), exercising the full deopt pipeline. The poison
   store is the program's last property store, and speculative code runs
   again afterwards — the shape the retire-path detection tests need. *)
let break_src =
  {|
function Point(x, y) { this.x = x; this.y = y; }
function sum(p, n) {
  var s = 0;
  for (var i = 0; i < n; i++) { s = (s + p.x + p.y + i) & 268435455; }
  return s;
}
var acc = 0;
for (var k = 0; k < 12; k++) {
  acc = (acc + sum(new Point(k, k + 1), 400)) & 268435455;
}
var bad = new Point(300, 4);
acc = (acc + sum(bad, 400)) & 268435455;
bad.x = 0.5;
acc = (acc + ((sum(bad, 400) * 2.0) | 0)) & 268435455;
print(acc);
|}

let run_with ?(mechanism = true) ?(fault = Injector.null) ?(trace = T.null) src
    =
  let config = { E.default_config with E.mechanism; fault; trace } in
  let t = E.of_source ~config src in
  E.set_measuring t true;
  ignore (E.run_main t);
  t

let test_disarmed_is_zero_cost () =
  let t_plain = run_with break_src in
  (* armed with a one-shot that never triggers: every hook runs, nothing
     fires, and the simulated numbers must not move *)
  let inert =
    Injector.create ~seed:7
      [ { Spec.point = Point.Cc_evict; trigger = Spec.At 1_000_000; param = None } ]
  in
  let t_armed = run_with ~fault:inert break_src in
  Alcotest.(check bool) "armed" true (Injector.armed inert);
  (* 13 Points x 2 constructor stores + the poison store = 27 CC accesses
     from the store path that offer an eviction opportunity *)
  Alcotest.(check int) "hooks saw opportunities" 27
    (Injector.opportunities inert Point.Cc_evict);
  Alcotest.(check int) "nothing fired" 0 (Injector.total_fires inert);
  Alcotest.(check string) "same output" (E.output t_plain) (E.output t_armed);
  Alcotest.(check int) "same optimized cycles" (E.opt_cycles t_plain)
    (E.opt_cycles t_armed);
  Alcotest.(check (float 1e-9)) "same baseline cycles"
    (E.baseline_cycles t_plain) (E.baseline_cycles t_armed)

(* --- retire-path detection --- *)

let reference_output src =
  E.output (run_with ~mechanism:false src)

let test_lost_deopt_detected () =
  let fault =
    Injector.create ~seed:11
      [ { Spec.point = Point.Lost_deopt; trigger = Spec.Prob 1.0; param = None } ]
  in
  let trace = T.create () in
  let t = run_with ~fault ~trace break_src in
  Alcotest.(check bool) "a deopt notification was dropped" true
    (Injector.lost fault <> []);
  Alcotest.(check bool) "the retire-path check caught it" true
    (Injector.detections fault > 0);
  Alcotest.(check string) "output equals the checks-on reference"
    (reference_output break_src) (E.output t);
  let detected =
    List.exists
      (fun r -> match r.T.ev with T.Fault_detected _ -> true | _ -> false)
      (T.records trace)
  in
  Alcotest.(check bool) "Fault_detected event emitted" true detected

let test_dropped_update_detected () =
  (* Pin the poison store's opportunity index with an inert probe run, then
     drop exactly that profiling update. *)
  let probe =
    Injector.create ~seed:5
      [ { Spec.point = Point.Cc_drop_update; trigger = Spec.At max_int; param = None } ]
  in
  ignore (run_with ~fault:probe break_src);
  let n = Injector.opportunities probe Point.Cc_drop_update in
  Alcotest.(check bool) "probe saw the store stream" true (n > 0);
  (* the poison store (bad.x = 0.5) is the last property store *)
  let fault =
    Injector.create ~seed:5
      [ { Spec.point = Point.Cc_drop_update; trigger = Spec.At n; param = None } ]
  in
  let t = run_with ~fault break_src in
  Alcotest.(check int) "the poly-transition update was dropped" 1
    (Injector.fires fault Point.Cc_drop_update);
  Alcotest.(check bool) "the ground-truth oracle exposed it" true
    (Injector.detections fault > 0);
  Alcotest.(check string) "output equals the checks-on reference"
    (reference_output break_src) (E.output t)

let test_spurious_and_delayed_are_safe () =
  List.iter
    (fun rule ->
      let fault = Injector.create ~seed:3 [ rule ] in
      let t = run_with ~fault break_src in
      Alcotest.(check string)
        (Point.name rule.Spec.point ^ " output equals reference")
        (reference_output break_src) (E.output t))
    [
      { Spec.point = Point.Cc_spurious_exn; trigger = Spec.Prob 0.2; param = None };
      { Spec.point = Point.Cc_delayed_exn; trigger = Spec.Prob 1.0; param = Some 3 };
      { Spec.point = Point.Cl_flip_valid; trigger = Spec.Prob 0.1; param = None };
      { Spec.point = Point.Cc_evict; trigger = Spec.Prob 0.5; param = None };
    ]

(* --- deopt-storm backoff and recovery --- *)

let storm_workload () =
  match Tce_workloads.Workloads.by_name "deopt-storm" with
  | Some w -> w
  | None -> Alcotest.fail "deopt-storm workload missing from the registry"

let test_backoff_engages_and_recovers () =
  let w = storm_workload () in
  let trace = T.create ~capacity:65536 () in
  let config = { E.default_config with E.trace = trace } in
  let t = E.of_source ~config w.Tce_workloads.Workload.source in
  E.set_measuring t true;
  ignore (E.run_main t);
  for _ = 1 to w.Tce_workloads.Workload.iterations do
    ignore (E.call_by_name t "bench" [||])
  done;
  let records = T.records trace in
  let backoffs =
    List.filter_map
      (fun r ->
        match r.T.ev with
        | T.Backoff { func; level; _ } -> Some (r.T.at, func, level)
        | _ -> None)
      records
  in
  Alcotest.(check bool) "backoff engaged" true (backoffs <> []);
  List.iter
    (fun (_, func, _) ->
      Alcotest.(check string) "the storming function backs off" "hotsum" func)
    backoffs;
  let levels = List.map (fun (_, _, l) -> l) backoffs in
  Alcotest.(check (list int)) "exponential escalation"
    (List.init (List.length levels) (fun i -> i + 1))
    levels;
  (* recovery: hotsum re-optimizes after the last cooldown *)
  let last_backoff_at =
    List.fold_left (fun acc (at, _, _) -> max acc at) 0 backoffs
  in
  let recovered =
    List.exists
      (fun r ->
        match r.T.ev with
        | T.Tierup { func; _ } -> func = "hotsum" && r.T.at > last_backoff_at
        | _ -> false)
      records
  in
  Alcotest.(check bool) "hotsum re-optimizes after the storm" true recovered

let test_storm_checksum_stable () =
  (* mechanism on/off agree on the storm workload (run_pair asserts) *)
  let off, on = Tce_metrics.Harness.run_pair (storm_workload ()) in
  Alcotest.(check string) "checksums agree" off.Tce_metrics.Harness.checksum
    on.Tce_metrics.Harness.checksum;
  Alcotest.(check bool) "the storm actually deopts" true
    (on.Tce_metrics.Harness.deopts >= 0)

(* --- unfaulted engine unchanged by the fault layer --- *)

let test_null_injector_shared_safely () =
  (* Engine creation must never mutate Injector.null (it is shared across
     parallel domains); its trace stays the global null trace. *)
  let trace = T.create () in
  let t = run_with ~trace break_src in
  ignore t;
  Alcotest.(check bool) "null injector still disarmed" false
    (Injector.armed Injector.null);
  Alcotest.(check int) "null injector saw nothing" 0
    (Injector.total_fires Injector.null)

let () =
  Alcotest.run "fault"
    [
      ( "spec",
        [
          Alcotest.test_case "round-trip + rejects" `Quick test_spec_roundtrip;
        ] );
      ( "injector",
        [
          Alcotest.test_case "deterministic from seed" `Quick
            test_injector_deterministic;
          Alcotest.test_case "null shared safely" `Quick
            test_null_injector_shared_safely;
        ] );
      ( "zero-cost",
        [
          Alcotest.test_case "armed-but-inert = bit-identical" `Quick
            test_disarmed_is_zero_cost;
        ] );
      ( "detection",
        [
          Alcotest.test_case "lost deopt detected" `Quick
            test_lost_deopt_detected;
          Alcotest.test_case "dropped update detected" `Quick
            test_dropped_update_detected;
          Alcotest.test_case "spurious/delayed/flip/evict safe" `Quick
            test_spurious_and_delayed_are_safe;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "storm engages backoff, then recovers" `Quick
            test_backoff_engages_and_recovers;
          Alcotest.test_case "storm checksum stable" `Quick
            test_storm_checksum_stable;
        ] );
    ]
