(* Tests for the design-space explorer (Tce_runner.Sweep) and the
   content-addressed cell cache (Tce_runner.Cache):
   (a) sweep-spec grammar: canonical round-trips, value sorting/dedup,
       and loud rejection of unknown keys, empty value lists, duplicate
       axes, non-positive values and over-wide Class Lists;
   (b) grid expansion: invalid entries/ways combinations skipped and
       counted, matrix order point-major, empty grids rejected;
   (c) cache keys: label-order independence, duplicate-label rejection,
       and geometry sensitivity through Store.config_hash;
   (d) cache-hit byte identity: a warm 5-workload sweep performs zero
       simulations and serializes byte-identically to the cold one;
   (e) LRU prune: evicts oldest-first and bounds the directory size;
   (f) end-to-end: a supervised sweep over the real bench binary is
       byte-identical to the in-process run, and resuming from a torn
       mid-grid journal completes with resume provenance. *)

open Tce_runner
module W = Tce_workloads.Workload

let expect_axes spec =
  match Sweep.parse_spec spec with
  | Ok a -> a
  | Error e -> Alcotest.failf "parse_spec %S: %s" spec e

(* --- spec grammar --- *)

let test_spec_roundtrip () =
  (* values arrive unsorted with duplicates; the canonical string sorts
     and dedups, and re-parsing it is a fixpoint *)
  let a = expect_axes "cc.ways=4,1,2 cc.entries=128,64,128" in
  Alcotest.(check (list int)) "entries sorted+deduped" [ 64; 128 ] a.Sweep.ax_entries;
  Alcotest.(check (list int)) "ways sorted" [ 1; 2; 4 ] a.Sweep.ax_ways;
  let s = Sweep.axes_to_string a in
  (match Sweep.parse_spec s with
  | Ok b -> Alcotest.(check bool) "canonical string is a fixpoint" true (a = b)
  | Error e -> Alcotest.failf "re-parse of %S: %s" s e);
  (* an absent axis sweeps only the paper default *)
  let d = expect_axes "cc.entries=64" in
  Alcotest.(check (list int)) "absent ways axis defaults" [ 2 ] d.Sweep.ax_ways;
  Alcotest.(check (list int)) "absent cl axis defaults" [ 7 ] d.Sweep.ax_sizes

let test_spec_rejections () =
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" bad)
        true
        (Result.is_error (Sweep.parse_spec bad)))
    [
      "";
      "   ";
      "cc.bogus=1";
      "cc.entries";
      "cc.entries=";
      "cc.entries=,";
      "cc.entries=0";
      "cc.entries=-4";
      "cc.entries=abc";
      "cc.entries=64 cc.entries=128";
      "cl.size=8";
      "cl.size=0";
    ];
  (* unknown keys name the known axes so the error is actionable *)
  match Sweep.parse_spec "cc.bogus=1" with
  | Ok _ -> Alcotest.fail "unknown key accepted"
  | Error e ->
    Alcotest.(check bool) "error lists known axes" true
      (Astring.String.is_infix ~affix:"cc.entries" e)

let test_expand_skips_invalid () =
  let a = expect_axes "cc.entries=64,96 cc.ways=2,3" in
  let points, skipped = Sweep.expand a in
  (* 64/3 has no whole number of sets; the other three combinations do *)
  Alcotest.(check int) "valid points" 3 (List.length points);
  Alcotest.(check int) "invalid combinations counted" 1 skipped;
  Alcotest.(check bool) "64x3 absent" true
    (not
       (List.exists
          (fun p -> p.Sweep.entries = 64 && p.Sweep.ways = 3)
          points))

let test_matrix_point_major () =
  let points, _ = Sweep.expand (expect_axes "cc.entries=64,128") in
  let ws =
    List.filter_map Tce_workloads.Workloads.by_name
      [ "controlflow-recursive"; "deopt-storm" ]
  in
  let m = Sweep.matrix points ws in
  Alcotest.(check int) "4 cells" 4 (List.length m);
  Alcotest.(check (list string)) "point-major, workload-minor"
    [ "64/controlflow-recursive"; "64/deopt-storm"; "128/controlflow-recursive";
      "128/deopt-storm" ]
    (List.map
       (fun (p, w) -> Printf.sprintf "%d/%s" p.Sweep.entries w.W.name)
       m)

let test_empty_grid_raises () =
  let a = expect_axes "cc.entries=64 cc.ways=3" in
  let points, skipped = Sweep.expand a in
  Alcotest.(check int) "no valid points" 0 (List.length points);
  Alcotest.(check int) "the combination was counted" 1 skipped;
  match Sweep.run ~jobs:1 ~axes:a [] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "empty grid must raise"

(* --- cache keys --- *)

let test_key_label_permutation () =
  let parts = [ ("kind", "x"); ("workload", "w"); ("config", "c") ] in
  let k = Cache.key parts in
  List.iter
    (fun perm ->
      Alcotest.(check string) "label order is irrelevant" k (Cache.key perm))
    [
      [ ("workload", "w"); ("config", "c"); ("kind", "x") ];
      [ ("config", "c"); ("kind", "x"); ("workload", "w") ];
    ];
  Alcotest.(check bool) "a changed value changes the key" true
    (k <> Cache.key [ ("kind", "x"); ("workload", "w'"); ("config", "c") ]);
  match Cache.key [ ("a", "1"); ("a", "2") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate label must be rejected"

let test_bench_key_geometry_sensitivity () =
  let w = List.hd (Tce_workloads.Workloads.selected) in
  let default = Cache.bench_key w in
  Alcotest.(check string) "explicit default config keys identically" default
    (Cache.bench_key ~config:Tce_engine.Engine.default_config w);
  let small =
    Sweep.config_of_point { Sweep.entries = 64; ways = 2; cl_size = 7 }
  in
  Alcotest.(check bool) "geometry reaches the key" true
    (default <> Cache.bench_key ~config:small w);
  let narrow =
    Sweep.config_of_point { Sweep.entries = 128; ways = 2; cl_size = 4 }
  in
  Alcotest.(check bool) "class-list size reaches the key" true
    (default <> Cache.bench_key ~config:narrow w)

(* --- cache-hit byte identity --- *)

let tmp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let mk_workload name body =
  W.make ~suite:W.Octane ~selected:false name body

let roster5 =
  List.map
    (fun (name, stride) ->
      mk_workload name
        (Printf.sprintf
           "function bench() { var s = %d; for (var i = 0; i < 40; i++) { s = (s + i * %d) & 1023; } return s; }"
           stride stride))
    [ ("cache-a", 1); ("cache-b", 2); ("cache-c", 3); ("cache-d", 5);
      ("cache-e", 7) ]

let sweep_bytes t =
  Tce_obs.Json.to_string (Sweep.to_json (Sweep.normalize t))

let test_warm_sweep_byte_identical () =
  let dir = tmp_dir "tce-cache-bytes" in
  let axes = expect_axes "cc.entries=64" in
  let cold_cache = Cache.create ~dir () in
  let cold = Sweep.run ~cache:cold_cache ~jobs:1 ~axes roster5 in
  let cs = Cache.stats cold_cache in
  Alcotest.(check int) "cold: no hits" 0 cs.Cache.hits;
  Alcotest.(check int) "cold: one miss per cell" 5 cs.Cache.misses;
  let warm_cache = Cache.create ~dir () in
  let warm = Sweep.run ~cache:warm_cache ~jobs:1 ~axes roster5 in
  let wst = Cache.stats warm_cache in
  Alcotest.(check int) "warm: every cell a hit" 5 wst.Cache.hits;
  Alcotest.(check int) "warm: zero simulations" 0 wst.Cache.misses;
  Alcotest.(check string) "warm sweep byte-identical to cold" (sweep_bytes cold)
    (sweep_bytes warm);
  (* the cached rows carry real simulated data, not stale defaults *)
  let uncached = Sweep.run ~jobs:1 ~axes roster5 in
  Alcotest.(check string) "and to an uncached run" (sweep_bytes uncached)
    (sweep_bytes warm);
  List.iter2
    (fun (_, (a : Record.workload)) (_, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s deterministically equal" a.Record.name)
        true
        (Record.equal_deterministic a b))
    uncached.Sweep.cells warm.Sweep.cells

let test_one_axis_change_resimulates_only_new_cells () =
  let dir = tmp_dir "tce-cache-axis" in
  let c0 = Cache.create ~dir () in
  ignore (Sweep.run ~cache:c0 ~jobs:1 ~axes:(expect_axes "cc.entries=64") roster5);
  let c1 = Cache.create ~dir () in
  ignore
    (Sweep.run ~cache:c1 ~jobs:1 ~axes:(expect_axes "cc.entries=64,128") roster5);
  let s = Cache.stats c1 in
  Alcotest.(check int) "old axis value served from cache" 5 s.Cache.hits;
  Alcotest.(check int) "only the new axis value simulated" 5 s.Cache.misses

(* --- LRU prune --- *)

let test_prune_evicts_oldest_first () =
  let dir = tmp_dir "tce-cache-prune" in
  let c = Cache.create ~dir () in
  let key i = Printf.sprintf "%032d" i in
  let payload i =
    Tce_obs.Json.Obj [ ("cell", Tce_obs.Json.Str (String.make 64 (Char.chr (65 + i)))) ]
  in
  for i = 0 to 9 do
    Cache.store c ~key:(key i) (payload i);
    (* deterministic LRU clock: cell i was last used at epoch + i + 1
       (0.0/0.0 would mean "now" to Unix.utimes) *)
    Unix.utimes (Filename.concat dir (key i ^ ".json"))
      (float_of_int (i + 1))
      (float_of_int (i + 1))
  done;
  let total = Cache.size_bytes ~dir () in
  Alcotest.(check bool) "ten cells on disk" true (total > 0);
  let max_bytes = total / 2 in
  let removed, freed = Cache.prune ~dir ~max_bytes () in
  Alcotest.(check bool) "something evicted" true (removed > 0);
  Alcotest.(check bool) "freed matches eviction" true (freed > 0);
  Alcotest.(check bool) "size bounded" true (Cache.size_bytes ~dir () <= max_bytes);
  (* oldest mtimes go first: cell 0 must be gone, cell 9 must survive *)
  Alcotest.(check bool) "oldest evicted" false
    (Sys.file_exists (Filename.concat dir (key 0 ^ ".json")));
  Alcotest.(check bool) "newest kept" true
    (Sys.file_exists (Filename.concat dir (key 9 ^ ".json")));
  let again, _ = Cache.prune ~dir ~max_bytes () in
  Alcotest.(check int) "prune is idempotent under the bound" 0 again

(* --- end-to-end over the real bench binary --- *)

let log_dir =
  Filename.concat (Filename.get_temp_dir_name ()) "tce-sweep-test-logs"

let bench_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bench/main.exe"

let require_bench_exe () =
  if not (Sys.file_exists bench_exe) then
    Alcotest.failf "bench binary not found at %s" bench_exe

let e2e_cfg =
  {
    Supervise.default_config with
    Supervise.cell_timeout_s = 120.0;
    backoff_base_s = 0.01;
    backoff_cap_s = 0.05;
    verbose = false;
  }

let e2e_roster =
  List.filter_map Tce_workloads.Workloads.by_name
    [ "controlflow-recursive"; "deopt-storm" ]

let e2e_axes = expect_axes "cc.entries=64,128"
let tmp_journal () = Filename.temp_file "tce-sweep-journal" ".jsonl"

let test_e2e_supervised_byte_identical () =
  require_bench_exe ();
  let serial = Sweep.run ~jobs:1 ~axes:e2e_axes e2e_roster in
  let sup =
    Sweep.parent ~exe:bench_exe ~log_dir ~supervise:e2e_cfg
      ~journal_path:(tmp_journal ()) ~shards:2 ~worker_args:[] ~axes:e2e_axes
      e2e_roster
  in
  Alcotest.(check string) "supervised sweep byte-identical to in-process"
    (sweep_bytes serial) (sweep_bytes sup)

let test_e2e_resume_mid_grid () =
  require_bench_exe ();
  let serial = Sweep.run ~jobs:1 ~axes:e2e_axes e2e_roster in
  let journal_path = tmp_journal () in
  let full =
    Sweep.parent ~exe:bench_exe ~log_dir ~supervise:e2e_cfg ~journal_path
      ~shards:2 ~worker_args:[] ~axes:e2e_axes e2e_roster
  in
  Alcotest.(check string) "full supervised run byte-identical"
    (sweep_bytes serial) (sweep_bytes full);
  (* keep two complete cells plus a torn fragment, as a parent crash
     mid-grid would leave behind *)
  let lines =
    match Store.journal_lines journal_path with
    | Ok (a :: b :: _) -> [ a; b ]
    | Ok _ -> Alcotest.fail "journal too short"
    | Error e -> Alcotest.fail e
  in
  let truncated = Filename.temp_file "tce-sweep-journal-torn" ".jsonl" in
  let oc = open_out truncated in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  output_string oc "{\"torn";
  close_out oc;
  let resumed =
    Sweep.parent ~exe:bench_exe ~log_dir ~supervise:e2e_cfg
      ~journal_path:(tmp_journal ()) ~resume:truncated ~shards:2
      ~worker_args:[] ~axes:e2e_axes e2e_roster
  in
  Alcotest.(check int) "two cells replayed from the journal" 2
    (List.length resumed.Sweep.resumed_rows);
  Alcotest.(check string) "resumed run byte-identical to in-process"
    (sweep_bytes serial) (sweep_bytes resumed)

let () =
  Alcotest.run "sweep"
    [
      ( "spec",
        [
          Alcotest.test_case "canonical round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "bad specs rejected" `Quick test_spec_rejections;
          Alcotest.test_case "invalid combinations skipped" `Quick
            test_expand_skips_invalid;
          Alcotest.test_case "matrix point-major" `Quick test_matrix_point_major;
          Alcotest.test_case "empty grid raises" `Quick test_empty_grid_raises;
        ] );
      ( "cache-key",
        [
          Alcotest.test_case "label-order independent" `Quick
            test_key_label_permutation;
          Alcotest.test_case "geometry sensitivity" `Quick
            test_bench_key_geometry_sensitivity;
        ] );
      ( "cache",
        [
          Alcotest.test_case "warm sweep byte-identical, zero sims" `Quick
            test_warm_sweep_byte_identical;
          Alcotest.test_case "one-axis change re-simulates only new cells"
            `Quick test_one_axis_change_resimulates_only_new_cells;
          Alcotest.test_case "LRU prune bounds and eviction order" `Quick
            test_prune_evicts_oldest_first;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "supervised sweep byte-identical" `Slow
            test_e2e_supervised_byte_identical;
          Alcotest.test_case "resume mid-grid" `Slow test_e2e_resume_mid_grid;
        ] );
    ]
