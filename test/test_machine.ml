(* Tests for the timing machinery: caches, TLBs, branch prediction, energy,
   costs, and the LIR executor's timing/functional behaviour. *)

open Tce_machine

(* --- cache model --- *)

let test_cache_cold_then_warm () =
  let c = Cache.create ~size_kb:1 ~ways:2 ~line_bytes:64 in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0x1000);
  Alcotest.(check bool) "warm hit" true (Cache.access c 0x1000);
  Alcotest.(check bool) "same line hits" true (Cache.access c 0x1038);
  Alcotest.(check bool) "different line misses" false (Cache.access c 0x2000)

let test_cache_lru_eviction () =
  (* 1KB, 2-way, 64B lines -> 8 sets; three lines in one set evict LRU *)
  let c = Cache.create ~size_kb:1 ~ways:2 ~line_bytes:64 in
  let a0 = 0x0000 and a1 = 0x0200 and a2 = 0x0400 in
  ignore (Cache.access c a0);
  ignore (Cache.access c a1);
  ignore (Cache.access c a0);  (* a0 most recent *)
  ignore (Cache.access c a2);  (* evicts a1 *)
  Alcotest.(check bool) "a0 survives" true (Cache.access c a0);
  Alcotest.(check bool) "a1 evicted" false (Cache.access c a1)

let test_cache_insert_is_free () =
  let c = Cache.create ~size_kb:1 ~ways:2 ~line_bytes:64 in
  Cache.insert c 0x3000;
  let before = c.Cache.stats.accesses in
  Alcotest.(check int) "insert does not count" 0 before;
  Alcotest.(check bool) "inserted line hits" true (Cache.access c 0x3000)

let test_cache_capacity () =
  (* sweeping twice the capacity thrashes; sweeping half fits *)
  let c = Cache.create ~size_kb:4 ~ways:4 ~line_bytes:64 in
  for i = 0 to 31 do
    ignore (Cache.access c (i * 64))
  done;
  let hits = ref 0 in
  for i = 0 to 31 do
    if Cache.access c (i * 64) then incr hits
  done;
  Alcotest.(check int) "2KB re-sweep fully hits in 4KB cache" 32 !hits

let test_tlb () =
  let t = Tlb.create ~entries:2 in
  Alcotest.(check bool) "cold" false (Tlb.access t 0x1000);
  Alcotest.(check bool) "same page" true (Tlb.access t 0x1800);
  ignore (Tlb.access t 0x10000);
  ignore (Tlb.access t 0x20000);  (* evicts page of 0x1000 *)
  Alcotest.(check bool) "evicted" false (Tlb.access t 0x1000)

let test_branch_predictor_learns () =
  let b = Branch.create () in
  (* an always-taken branch is mispredicted at most twice, then learned *)
  let mispredicts = ref 0 in
  for _ = 1 to 50 do
    if not (Branch.record b ~fn:1 ~pc:10 ~taken:true) then incr mispredicts
  done;
  Alcotest.(check bool) "learns quickly" true (!mispredicts <= 2);
  (* alternating branch stays hard *)
  let b2 = Branch.create () in
  let m2 = ref 0 in
  for i = 1 to 50 do
    if not (Branch.record b2 ~fn:1 ~pc:11 ~taken:(i mod 2 = 0)) then incr m2
  done;
  Alcotest.(check bool) "alternating mispredicts a lot" true (!m2 >= 20)

(* --- config / costs / energy --- *)

let test_config_table2 () =
  let c = Config.default in
  Alcotest.(check int) "issue width" 4 c.Config.issue_width;
  Alcotest.(check int) "window" 128 c.Config.window_size;
  Alcotest.(check int) "ldst" 10 c.Config.outstanding_ldst;
  Alcotest.(check int) "l1 lat" 2 c.Config.l1_load_latency;
  Alcotest.(check int) "cc entries" 128 c.Config.class_cache_entries;
  Alcotest.(check int) "rows listed" 11 (List.length (Config.rows c))

let test_costs_positive () =
  List.iter
    (fun rt ->
      let c = Costs.rt_cost rt in
      Alcotest.(check bool) "positive instrs" true (c.Costs.instrs > 0);
      Alcotest.(check bool) "positive cycles" true (c.Costs.cycles > 0))
    [
      Tce_jit.Lir.Rt_alloc_object (1, 4);
      Rt_alloc_array (Tce_vm.Hidden_class.E_smi, 8);
      Rt_box_double;
      Rt_generic_get_prop "x";
      Rt_generic_set_prop "x";
      Rt_generic_get_elem;
      Rt_generic_set_elem;
      Rt_generic_binop Tce_minijs.Ast.Add;
      Rt_elem_store_slow;
      Rt_to_bool;
      Rt_builtin Tce_jit.Builtins.B_sqrt;
      Rt_fmod;
    ]

let test_energy_monotone () =
  let base =
    {
      Energy.instrs = 1000; alu_ops = 500; fp_ops = 50; branches = 100;
      l1_accesses = 300; l2_accesses = 10; mem_accesses = 2; cc_accesses = 20;
      cycles = 500.0;
    }
  in
  let e1 = Energy.compute base in
  let e2 = Energy.compute { base with Energy.instrs = 2000 } in
  let e3 = Energy.compute { base with Energy.cycles = 1000.0 } in
  Alcotest.(check bool) "total positive" true (e1.Energy.total_nj > 0.0);
  Alcotest.(check bool) "more instrs, more dynamic" true
    (e2.Energy.dynamic_nj > e1.Energy.dynamic_nj);
  Alcotest.(check bool) "more cycles, more leakage" true
    (e3.Energy.leakage_nj > e1.Energy.leakage_nj);
  Alcotest.(check (float 1e-9)) "total = dynamic + leakage" e1.Energy.total_nj
    (e1.Energy.dynamic_nj +. e1.Energy.leakage_nj)

(* --- counters --- *)

let test_counters () =
  let c = Counters.create () in
  Counters.add_cat c Tce_jit.Categories.C_check 5;
  Counters.add_cat c Tce_jit.Categories.C_other 10;
  Alcotest.(check int) "cat read" 5 (Counters.cat c Tce_jit.Categories.C_check);
  Alcotest.(check int) "opt total" 15 (Counters.opt_instrs c);
  c.Counters.baseline_instrs <- 100;
  Alcotest.(check int) "total" 115 (Counters.total_instrs c);
  Counters.record_obj_load c ~classid:1 ~line:0 ~pos:1;
  Counters.record_obj_load c ~classid:1 ~line:1 ~pos:2;
  Alcotest.(check int) "obj loads" 2 c.Counters.obj_loads_total;
  Alcotest.(check int) "first line" 1 c.Counters.obj_loads_first_line;
  Counters.reset c;
  Alcotest.(check int) "reset" 0 (Counters.total_instrs c)

let test_counters_fig3_classification () =
  let c = Counters.create () in
  let o = Tce_core.Oracle.create () in
  (* slot (1,0,1): two classes -> poly; slot (1,0,2): one class -> mono elem *)
  Tce_core.Oracle.record o ~classid:1 ~line:0 ~pos:1 ~value_classid:5;
  Tce_core.Oracle.record o ~classid:1 ~line:0 ~pos:1 ~value_classid:6;
  Tce_core.Oracle.record o ~classid:1 ~line:0 ~pos:2 ~value_classid:5;
  Counters.record_obj_load c ~classid:1 ~line:0 ~pos:1;
  Counters.record_obj_load c ~classid:1 ~line:0 ~pos:1;
  Counters.record_obj_load c ~classid:1 ~line:0 ~pos:2;
  let mono_p, mono_e, poly_p, poly_e = Counters.classify_obj_loads c o in
  Alcotest.(check (list int)) "classification" [ 0; 1; 2; 0 ]
    [ mono_p; mono_e; poly_p; poly_e ]

(* --- machine timing sanity (via the engine, which owns program setup) --- *)

module E = Tce_engine.Engine

let run_cycles src =
  let t = E.of_source src in
  E.set_measuring t false;
  ignore (E.run_main t);
  for _ = 1 to 9 do
    ignore (E.call_by_name t "bench" [||])
  done;
  E.reset_measurement t;
  let c0 = E.opt_cycles t in
  E.set_measuring t true;
  ignore (E.call_by_name t "bench" [||]);
  E.opt_cycles t - c0

let test_timing_scales_with_work () =
  let src n =
    Printf.sprintf
      "function bench() { var s = 0; for (var i = 0; i < %d; i++) { s = (s + i) & 65535; } return s; }"
      n
  in
  let c1 = run_cycles (src 100) in
  let c2 = run_cycles (src 1000) in
  Alcotest.(check bool) "work scales cycles" true (c2 > 5 * c1);
  Alcotest.(check bool) "cycles positive" true (c1 > 0)

let test_timing_deterministic () =
  let src =
    "function bench() { var s = 0.0; for (var i = 0; i < 500; i++) { s = s + i * 0.25; } return s; }"
  in
  Alcotest.(check int) "same cycles for same program" (run_cycles src)
    (run_cycles src)

let test_fp_latency_visible () =
  (* a dependent FDiv chain must be slower than a dependent FAdd chain *)
  let adds =
    run_cycles
      "function bench() { var s = 1.5; for (var i = 0; i < 400; i++) { s = s + 1.25; } return s; }"
  in
  let divs =
    run_cycles
      "function bench() { var s = 1.5e30; for (var i = 0; i < 400; i++) { s = s / 1.01; } return s; }"
  in
  Alcotest.(check bool)
    (Printf.sprintf "fdiv chain slower (%d > %d)" divs adds)
    true (divs > adds)

let test_memory_latency_visible () =
  (* random-ish strided traversal of a large array must cost more per
     element than a small resident one *)
  let src size =
    Printf.sprintf
      {|
var a = array_new(%d);
for (var i = 0; i < %d; i++) { a[i] = (i * 7919 + 13) %% %d; }
function bench() {
  var x = 0;
  for (var k = 0; k < 2000; k++) { x = a[x]; }
  return x;
}
|}
      size size size
  in
  let small = run_cycles (src 256) in
  let big = run_cycles (src 65536) in
  Alcotest.(check bool)
    (Printf.sprintf "cache misses cost cycles (%d > %d)" big small)
    true (big > small + 1000)


(* --- direct LIR timing tests (hand-built machine + host) --- *)

let mk_machine () =
  let heap = Tce_vm.Heap.create () in
  let cl = Tce_core.Class_list.create heap.Tce_vm.Heap.mem in
  let cc = Tce_core.Class_cache.create () in
  let oracle = Tce_core.Oracle.create () in
  let counters = Counters.create () in
  (heap, Machine.create ~heap ~cc ~cl ~oracle ~counters ())

let stub_host : Machine.host =
  {
    Machine.call_fn = (fun _ _ -> 0);
    resume = (fun ~opt_id:_ ~bc_pc:_ ~regs:_ ~result:_ -> 0);
    rt_call = (fun _ _ _ -> (0, 0.0));
    on_cc_exception = (fun _ -> ());
    on_deopt = (fun _ -> ());
    is_invalidated = (fun _ -> false);
  }

let mk_func code ~n_regs =
  {
    Tce_jit.Lir.fn_id = 0;
    opt_id = 0;
    name = "lir-test";
    code = Array.of_list (List.map (Tce_jit.Lir.inst Tce_jit.Categories.C_other) code);
    deopts = [||];
    reprs = [||];
    n_regs;
    n_fregs = 1;
    code_addr = 0x5000_0000;
    spec_deps = [];
    invalidated = false;
    deopt_hits = 0;
  }

let run_lir code ~n_regs =
  let _, m = mk_machine () in
  let f = mk_func code ~n_regs in
  (* first run warms the I-cache (cold code is a front-end bubble per line);
     measure the second, steady-state run *)
  ignore (Machine.run m stub_host f [| 0 |]);
  let c0 = m.Machine.cycle in
  ignore (Machine.run m stub_host f [| 0 |]);
  m.Machine.cycle - c0

let test_dispatch_width () =
  (* 400 independent immediates on a 4-wide machine: ~100 cycles *)
  let open Tce_jit.Lir in
  let code =
    List.init 400 (fun i -> MovImm (1 + (i mod 8), i)) @ [ Ret 1 ]
  in
  let cycles = run_lir code ~n_regs:16 in
  Alcotest.(check bool)
    (Printf.sprintf "4-wide dispatch (%d cycles for 400 instrs)" cycles)
    true
    (cycles >= 100 && cycles <= 130)

let test_dependence_chain_serializes () =
  let open Tce_jit.Lir in
  let chain =
    MovImm (1, 0) :: List.init 400 (fun _ -> Alu (Add, 1, 1, Imm 1)) @ [ Ret 1 ]
  in
  let cycles = run_lir chain ~n_regs:4 in
  (* one ALU per cycle on the critical path; the dispatch clock trails the
     completion front by at most the window size (128) *)
  Alcotest.(check bool)
    (Printf.sprintf "dependent adds serialize (%d cycles)" cycles)
    true
    (cycles >= 400 - 130 && cycles <= 420)

let test_load_port_limit () =
  let open Tce_jit.Lir in
  let heap, m = mk_machine () in
  (* one resident line, 300 independent loads: 1 load/cycle port bound *)
  let addr = Tce_vm.Mem.allocate heap.Tce_vm.Heap.mem ~bytes:64 ~align:64 in
  Tce_vm.Mem.store heap.Tce_vm.Heap.mem addr 7;
  let code =
    MovImm (1, addr) :: List.init 300 (fun i -> Load (2 + (i mod 4), 1, 0))
    @ [ Ret 1 ]
  in
  let f = mk_func code ~n_regs:8 in
  ignore (Machine.run m stub_host f [| 0 |]);
  let c0 = m.Machine.cycle in
  ignore (Machine.run m stub_host f [| 0 |]);
  let cycles = m.Machine.cycle - c0 in
  Alcotest.(check bool)
    (Printf.sprintf "load port bound (%d cycles for 300 loads)" cycles)
    true (cycles >= 295)

let test_fused_branch_executes () =
  let open Tce_jit.Lir in
  (* loop: r1 counts down from 50; branch back while non-zero *)
  let code =
    [
      MovImm (1, 50);  (* 0 *)
      Alu (Sub, 1, 1, Imm 1);  (* 1 *)
      Branch (Ne, 1, Imm 0, 1);  (* 2 *)
      Ret 1;  (* 3 *)
    ]
  in
  let _, m = mk_machine () in
  let v = Machine.run m stub_host (mk_func code ~n_regs:4) [| 0 |] in
  Alcotest.(check int) "loop terminated with 0" 0 v

let test_special_store_fires_class_cache () =
  let open Tce_jit.Lir in
  let heap, m = mk_machine () in
  let base =
    Tce_vm.Hidden_class.Registry.fresh heap.Tce_vm.Heap.reg
      ~kind:Tce_vm.Hidden_class.K_object ~name:"M" ~prop_names:[| "x" |]
  in
  let o = Tce_vm.Heap.alloc_object heap base ~reserve_props:1 in
  let code =
    [
      MovImm (1, o);
      MovImm (2, Tce_vm.Value.smi 9);
      MovClassID 2;
      StoreClassCache (1, 7 (* slot 1, -1 tag *), Reg 2, 0);
      Ret 2;
    ]
  in
  let f =
    { (mk_func code ~n_regs:4) with
      Tce_jit.Lir.deopts =
        [| { Tce_jit.Lir.bc_pc = 0; result_into = None;
             reason =
               Tce_attr.Reason.make Tce_attr.Reason.K_check_map
                 Tce_attr.Reason.C_not_class ~pc:0 } |] }
  in
  ignore (Machine.run m stub_host f [| 0 |]);
  Alcotest.(check int) "one CC access" 1 m.Machine.cc.Tce_core.Class_cache.stats.accesses;
  Alcotest.(check (option int)) "profiled as SMI" (Some Tce_vm.Layout.smi_classid)
    (Tce_core.Class_list.profiled_class m.Machine.cl ~classid:base.Tce_vm.Hidden_class.id
       ~line:0 ~pos:1);
  (* and the store really wrote through *)
  Alcotest.(check (option int)) "value stored" (Some 9)
    (Option.map Tce_vm.Value.smi_value (Tce_vm.Heap.get_prop heap o "x"))

let () =
  Alcotest.run "machine"
    [
      ( "cache",
        [
          Alcotest.test_case "cold/warm" `Quick test_cache_cold_then_warm;
          Alcotest.test_case "LRU" `Quick test_cache_lru_eviction;
          Alcotest.test_case "insert (nursery)" `Quick test_cache_insert_is_free;
          Alcotest.test_case "capacity" `Quick test_cache_capacity;
        ] );
      ("tlb", [ Alcotest.test_case "basic" `Quick test_tlb ]);
      ("branch", [ Alcotest.test_case "bimodal learning" `Quick test_branch_predictor_learns ]);
      ( "config/costs/energy",
        [
          Alcotest.test_case "Table 2" `Quick test_config_table2;
          Alcotest.test_case "costs positive" `Quick test_costs_positive;
          Alcotest.test_case "energy monotone" `Quick test_energy_monotone;
        ] );
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counters;
          Alcotest.test_case "fig3 classification" `Quick
            test_counters_fig3_classification;
        ] );
      ( "timing",
        [
          Alcotest.test_case "scales with work" `Quick test_timing_scales_with_work;
          Alcotest.test_case "deterministic" `Quick test_timing_deterministic;
          Alcotest.test_case "fp latency" `Quick test_fp_latency_visible;
          Alcotest.test_case "memory latency" `Quick test_memory_latency_visible;
        ] );
      ( "lir executor",
        [
          Alcotest.test_case "dispatch width" `Quick test_dispatch_width;
          Alcotest.test_case "dependence chains" `Quick
            test_dependence_chain_serializes;
          Alcotest.test_case "load port" `Quick test_load_port_limit;
          Alcotest.test_case "branch loop" `Quick test_fused_branch_executes;
          Alcotest.test_case "special store" `Quick
            test_special_store_fires_class_cache;
        ] );
    ]
