(* End-to-end engine tests: language semantics (against hand-computed
   values), tier equivalence, deoptimization, misspeculation exceptions,
   OSR, and a random-program differential property. *)

module E = Tce_engine.Engine

let run_output ?(config = E.default_config) src =
  let t = E.of_source ~config src in
  (try ignore (E.run_main t)
   with e ->
     Alcotest.failf "runtime error: %s\nsource:\n%s" (Printexc.to_string e) src);
  E.output t

let interp_config = { E.default_config with E.jit = false }

(* expected output in all three execution modes *)
let check_all_modes name src expected =
  Alcotest.(check string) (name ^ " (interp)") expected
    (run_output ~config:interp_config src);
  Alcotest.(check string) (name ^ " (jit)") expected (run_output src);
  Alcotest.(check string)
    (name ^ " (jit, no mechanism)")
    expected
    (run_output ~config:{ E.default_config with E.mechanism = false } src)

let test_arithmetic () =
  check_all_modes "ints" "print(1 + 2 * 3 - 4);" "3\n";
  check_all_modes "division is float" "print(7 / 2);" "3.5\n";
  check_all_modes "int division idiom" "print((7 / 2) | 0);" "3\n";
  check_all_modes "modulo" "print(17 % 5); print((0 - 17) % 5);" "2\n-2\n";
  check_all_modes "float math" "print(0.1 + 0.2 > 0.3 - 0.0001);" "true\n";
  check_all_modes "mixed" "print(2 + 0.5);" "2.5\n";
  check_all_modes "overflow to double" "print(2000000000 + 2000000000);"
    "4000000000\n";
  check_all_modes "negative" "print(-5 + 3);" "-2\n"

let test_bitwise () =
  check_all_modes "and/or/xor" "print(12 & 10); print(12 | 3); print(12 ^ 10);"
    "8\n15\n6\n";
  check_all_modes "shifts" "print(1 << 10); print(-8 >> 1); print(-8 >>> 28);"
    "1024\n-4\n15\n";
  check_all_modes "bitnot" "print(~5);" "-6\n";
  check_all_modes "int32 wrap" "print((1 << 30) + (1 << 30) & -1 | 0);"
    (let v = Tce_vm.Value.to_int32 (1 lsl 31) in
     string_of_int v ^ "\n")

let test_comparisons_and_logic () =
  check_all_modes "relational" "print(1 < 2); print(2.5 >= 2.5); print(3 > 4);"
    "true\ntrue\nfalse\n";
  check_all_modes "equality" "print(1 == 1.0); print(\"a\" == \"a\"); print(null == null);"
    "true\ntrue\ntrue\n";
  check_all_modes "mixed equality is false" "print(1 == \"1\");" "false\n";
  check_all_modes "logic short circuit"
    "var x = 0; function f() { x = 1; return true; } var r = false && f(); print(x); print(r);"
    "0\nfalse\n";
  check_all_modes "or returns operand" "print(0 || 7); print(3 || 9);" "7\n3\n";
  check_all_modes "not" "print(!0); print(!3); print(!null);" "true\nfalse\ntrue\n"

let test_strings () =
  check_all_modes "concat" {|print("ab" + "cd");|} "abcd\n";
  check_all_modes "number coercion" {|print("x=" + 5); print(1.5 + "!");|}
    "x=5\n1.5!\n";
  check_all_modes "builtins"
    {|var s = "hello"; print(str_len(s)); print(char_code(s, 1)); print(substr(s, 1, 3)); print(from_char_code(65));|}
    "5\n101\nell\nA\n";
  check_all_modes "compare" {|print("abc" < "abd"); print(str_eq("a", "a"));|}
    "true\ntrue\n";
  check_all_modes "string index" {|var s = "xyz"; print(s[1]); print(s[9]);|}
    "y\nnull\n"

let test_objects () =
  check_all_modes "literal + props"
    "var o = {a: 1, b: 2.5}; o.c = o.a + o.b; print(o.c); o.a = 10; print(o.a);"
    "3.5\n10\n";
  check_all_modes "constructors"
    {|
function Pt(x, y) { this.x = x; this.y = y; }
var p = new Pt(3, 4);
print(p.x * p.x + p.y * p.y);
|}
    "25\n";
  check_all_modes "missing property is null" "var o = {a: 1}; print(o.b);" "null\n";
  check_all_modes "shapes shared"
    {|
function K(v) { this.v = v; }
var a = new K(1);
var b = new K(2);
a.extra = 9;
print(a.extra); print(b.extra); print(b.v);
|}
    "9\nnull\n2\n"

let test_arrays () =
  check_all_modes "literal and length" "var a = [1, 2, 3]; print(a.length); print(a[1]);"
    "3\n2\n";
  check_all_modes "growth"
    "var a = []; for (var i = 0; i < 100; i++) { push(a, i); } print(a.length); print(a[99]);"
    "100\n99\n";
  check_all_modes "oob" "var a = [1]; print(a[5]);" "null\n";
  check_all_modes "kind transitions"
    "var a = [1, 2]; a[0] = 1.5; print(a[0] + a[1]); a[1] = \"s\"; print(a[1]);"
    "3.5\ns\n";
  check_all_modes "array_new" "var a = array_new(3); print(a.length); print(a[2]);"
    "3\n0\n";
  check_all_modes "objects with elements"
    {|
function List(n) { this.n = n; }
var l = new List(2);
l[0] = 10; l[1] = 20;
print(l[0] + l[1]); print(l.n);
|}
    "30\n2\n"

let test_control_flow () =
  check_all_modes "for/break/continue"
    "var s = 0; for (var i = 0; i < 10; i++) { if (i == 2) continue; if (i == 5) break; s = s + i; } print(s);"
    "8\n";
  check_all_modes "while" "var n = 5; var f = 1; while (n > 1) { f = f * n; n--; } print(f);"
    "120\n";
  check_all_modes "nested loops"
    "var c = 0; for (var i = 0; i < 4; i++) { for (var j = 0; j < 4; j++) { if (i == j) { c = c + 1; } } } print(c);"
    "4\n";
  check_all_modes "ternary" "print(3 > 2 ? \"yes\" : \"no\");" "yes\n"

let test_functions () =
  check_all_modes "recursion"
    "function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } print(fib(15));"
    "610\n";
  check_all_modes "missing args are null"
    "function f(a, b) { if (b == null) { return a; } return a + b; } print(f(5, 2)); print(f(5));"
    "7\n5\n";
  check_all_modes "no explicit return" "function f() { var x = 1; } print(f());"
    "null\n";
  check_all_modes "builtin math"
    "print(sqrt(16)); print(abs(0 - 3.5)); print(floor(2.9)); print(max(2, 7));"
    "4\n3.5\n2\n7\n"

let test_math_builtins () =
  check_all_modes "pow" "print(pow(2, 10));" "1024\n";
  check_all_modes "trig identity" "var x = sin(0.5); var y = cos(0.5); print(x * x + y * y > 0.999999);"
    "true\n"

(* --- extended semantics / adversarial cases --- *)

let test_smi_boundaries () =
  check_all_modes "smi max arithmetic"
    "print(2147483647); print(2147483647 + 1); print(-2147483648 - 1);"
    "2147483647\n2147483648\n-2147483649\n";
  check_all_modes "mul overflow boxes"
    "print(100000 * 100000);" "10000000000\n";
  check_all_modes "neg of min smi" "var x = -2147483648; print(-x);" "2147483648\n"

let test_division_corner_cases () =
  check_all_modes "exact smi division" "print(12 / 4);" "3\n";
  check_all_modes "inexact divisions deopt correctly"
    "function d(a, b) { return a / b; } var r = 0; for (var i = 1; i < 30; i++) { r = d(i * 4, 4); } print(r); print(d(5, 2));"
    "29\n2.5\n";
  check_all_modes "division by zero is infinite"
    "print(1 / 0 > 1000000); print(0.5 / 0.0 > 1e100);" "true\ntrue\n";
  check_all_modes "mod negative dividend" "print((0 - 7) % 3);" "-1\n";
  check_all_modes "mod by zero is nan (prints)" "var x = 5 % 0; print(x == x);"
    "false\n"

let test_ushr_big_values () =
  check_all_modes "ushr produces uint32"
    "print(-1 >>> 0); print(-1 >>> 28);" "4294967295\n15\n";
  check_all_modes "ushr in a hot loop deopts once then stays right"
    "function f(x) { return x >>> 1; } var r = 0; for (var i = 0; i < 30; i++) { r = f(i); } print(r); print(f(-2));"
    "14\n2147483647\n"

let test_shift_masking () =
  check_all_modes "shift count masked to 31"
    "print(1 << 33); print(16 >> 36);" "2\n1\n"

let test_string_builtins_full () =
  check_all_modes "substr clamps"
    {|var s = "hello"; print(substr(s, 3, 10)); print(substr(s, 9, 2)); print(substr(s, 0, 0));|}
    "lo\n\n\n";
  check_all_modes "concat chain builds"
    {|var s = ""; for (var i = 0; i < 5; i++) { s = s + i; } print(s); print(str_len(s));|}
    "01234\n5\n";
  check_all_modes "from_char_code wraps" "print(from_char_code(65 + 256));" "A\n";
  check_all_modes "interning: content equality through concat"
    {|var a = "ab" + "c"; var b = "a" + "bc"; print(a == b);|} "true\n"

let test_math_builtins_full () =
  check_all_modes "floor/ceil negatives"
    "print(floor(0 - 1.5)); print(ceil(0 - 1.5));" "-2\n-1\n";
  check_all_modes "min/max with doubles" "print(min(1.5, 2)); print(max(0 - 1, 0 - 2.5));"
    "1.5\n-1\n";
  check_all_modes "abs smi and double" "print(abs(0 - 42)); print(abs(0 - 4.25));"
    "42\n4.25\n";
  check_all_modes "exp/log roundtrip" "print(abs(log(exp(2.0)) - 2.0) < 1e-9);"
    "true\n";
  check_all_modes "sqrt of square" "print(sqrt(12.25));" "3.5\n"

let test_deep_property_chains () =
  check_all_modes "three-level chains"
    {|
function A(b) { this.b = b; }
function B(c) { this.c = c; }
function C(v) { this.v = v; }
var root = new A(new B(new C(7)));
function get() { return root.b.c.v; }
var r = 0;
for (var i = 0; i < 20; i++) { r = r + get(); }
print(r);
|}
    "140\n"

let test_polymorphic_sites () =
  check_all_modes "two-shape polymorphic load"
    {|
function P(x) { this.x = x; }
function Q(x) { this.x = x; this.extra = 0; }
var os = array_new(0);
for (var i = 0; i < 40; i++) {
  if (i % 2 == 0) { push(os, new P(i)); } else { push(os, new Q(i)); }
}
function sum() {
  var s = 0;
  for (var i = 0; i < 40; i++) { s = s + os[i].x; }
  return s;
}
var r = 0;
for (var k = 0; k < 12; k++) { r = sum(); }
print(r);
|}
    "780\n"

let test_megamorphic_sites () =
  check_all_modes "six shapes go megamorphic and stay correct"
    {|
function S0(x) { this.a0 = 0; this.x = x; }
function S1(x) { this.a1 = 0; this.x = x; }
function S2(x) { this.a2 = 0; this.x = x; }
function S3(x) { this.a3 = 0; this.x = x; }
function S4(x) { this.a4 = 0; this.x = x; }
function S5(x) { this.a5 = 0; this.x = x; }
var os = array_new(0);
function fill() {
  push(os, new S0(0)); push(os, new S1(1)); push(os, new S2(2));
  push(os, new S3(3)); push(os, new S4(4)); push(os, new S5(5));
}
fill();
function sum() {
  var s = 0;
  for (var i = 0; i < 6; i++) { s = s + os[i].x; }
  return s;
}
var r = 0;
for (var k = 0; k < 15; k++) { r = sum(); }
print(r);
|}
    "15\n"

let test_transitioning_store_in_hot_code () =
  check_all_modes "hot function adds a property"
    {|
function mk(i) {
  var o = {a: i};
  o.b = i * 2;
  return o.a + o.b;
}
var r = 0;
for (var i = 0; i < 40; i++) { r = mk(i); }
print(r);
|}
    "117\n"

let test_object_identity () =
  check_all_modes "reference equality"
    {|
var a = {v: 1};
var b = {v: 1};
var c = a;
print(a == b); print(a == c); print(a != b);
|}
    "false\ntrue\ntrue\n"

let test_arrays_of_arrays () =
  check_all_modes "nested arrays"
    {|
var m = [];
for (var i = 0; i < 4; i++) {
  var row = [];
  for (var j = 0; j < 4; j++) { push(row, i * 4 + j); }
  push(m, row);
}
var s = 0;
for (var i = 0; i < 4; i++) {
  for (var j = 0; j < 4; j++) { s = s + m[i][j]; }
}
print(s);
|}
    "120\n"

let test_comparison_chains_hot () =
  check_all_modes "mixed compare kinds in one function"
    {|
function cmp(a, b) {
  if (a < b) { return 0 - 1; }
  if (a > b) { return 1; }
  return 0;
}
var r = 0;
for (var i = 0; i < 30; i++) { r = r + cmp(i, 15); }
print(r);
print(cmp(1.5, 1.5)); print(cmp("a", "b"));
|}
    "-1\n0\n-1\n"

let test_while_backedge_hotness () =
  (* a function hot only through loop iterations still gets optimized *)
  let t =
    E.of_source
      {|
function spin() {
  var s = 0;
  var i = 0;
  while (i < 3000) { s = (s + i) & 65535; i++; }
  return s;
}
var a = spin();
var b = spin();
print(a == b);
|}
  in
  ignore (E.run_main t);
  Alcotest.(check string) "correct" "true\n" (E.output t);
  let f = Option.get (Tce_jit.Bytecode.find_func t.E.prog "spin") in
  Alcotest.(check bool) "tiered via backedges" true
    (f.Tce_jit.Bytecode.backedge_count > 1000)

let test_many_locals_and_args () =
  check_all_modes "wide frames"
    {|
function wide(a, b, c, d, e, f, g, h) {
  var x1 = a + b; var x2 = c + d; var x3 = e + f; var x4 = g + h;
  var y1 = x1 * x2; var y2 = x3 * x4;
  return y1 + y2;
}
var r = 0;
for (var i = 0; i < 20; i++) { r = wide(1, 2, 3, 4, 5, 6, 7, 8); }
print(r);
|}
    "186\n"

let test_ctor_with_conditional_shapes () =
  (* two transition paths from one constructor: shape depends on input *)
  check_all_modes "branchy constructor"
    {|
function K(kind, v) {
  this.kind = kind;
  if (kind == 0) { this.small = v; } else { this.big = v * 1000; }
}
var os = array_new(0);
for (var i = 0; i < 30; i++) { push(os, new K(i % 2, i)); }
function sum() {
  var s = 0;
  for (var i = 0; i < 30; i++) {
    var o = os[i];
    if (o.kind == 0) { s = s + o.small; } else { s = s + o.big; }
  }
  return s;
}
var r = 0;
for (var k = 0; k < 12; k++) { r = sum(); }
print(r);
|}
    "225210\n"

let test_elements_growth_in_hot_loop () =
  check_all_modes "appends through the slow path"
    {|
function build(n) {
  var a = [];
  for (var i = 0; i < n; i++) { push(a, i * 3); }
  return a[n - 1];
}
var r = 0;
for (var k = 0; k < 12; k++) { r = build(50); }
print(r);
|}
    "147\n"

let test_print_formats () =
  check_all_modes "number display"
    "print(0.5); print(1e21); print(0 - 0.25); print(123456789);"
    "0.5\n1e+21\n-0.25\n123456789\n";
  check_all_modes "array display" "print([1, [2, 3], \"x\"]);" "[1,[2,3],x]\n";
  check_all_modes "object display" "print({a: 1});" "[object Object+a]\n"

(* --- tier interactions --- *)

let test_hot_function_tiers_up () =
  let t =
    E.of_source
      "function f(n) { var s = 0; for (var i = 0; i < n; i++) { s = s + i; } return s; }\n\
       var r = 0;\n\
       for (var k = 0; k < 20; k++) { r = f(100); }\n\
       print(r);"
  in
  ignore (E.run_main t);
  Alcotest.(check string) "result" "4950\n" (E.output t);
  let f = Option.get (Tce_jit.Bytecode.find_func t.E.prog "f") in
  Alcotest.(check bool) "f was optimized" true (f.Tce_jit.Bytecode.opt <> None)

let test_deopt_on_type_change () =
  (* checks fail when types change; execution must fall back and stay right *)
  check_all_modes "smi -> double phase change"
    {|
function add(a, b) { return a + b; }
var r = 0;
for (var i = 0; i < 50; i++) { r = add(i, 1); }
var r2 = add(0.5, 0.25);
print(r); print(r2);
|}
    "50\n0.75\n"

let test_misspeculation_exception () =
  let src =
    {|
function Box(v) { this.v = v; }
function get(b) { return b.v; }
var boxes = array_new(0);
for (var i = 0; i < 100; i++) { push(boxes, new Box(i)); }
function sum() {
  var s = 0;
  for (var i = 0; i < 100; i++) { s = s + get(boxes[i]); }
  return s;
}
var r = 0;
for (var k = 0; k < 10; k++) { r = sum(); }
boxes[3].v = 2.5;
print(r); print(sum());
|}
  in
  check_all_modes "profile break stays correct" src "4950\n4949.5\n";
  (* with the mechanism, the break must raise the exception and deopt *)
  let t = E.of_source src in
  E.set_measuring t true;
  ignore (E.run_main t);
  Alcotest.(check bool) "misspeculation exception raised" true
    (t.E.cc.Tce_core.Class_cache.stats.exceptions > 0)

let test_osr_out_of_invalidated_frame () =
  (* the store that breaks the profile happens INSIDE the optimized function
     that speculated on it: it must OSR out mid-execution and stay correct *)
  check_all_modes "self-invalidating function"
    {|
function Box(v) { this.v = v; }
var boxes = array_new(0);
for (var i = 0; i < 60; i++) { push(boxes, new Box(i)); }
var trigger = 0 - 1;
function sweep() {
  var s = 0;
  for (var i = 0; i < 60; i++) {
    var b = boxes[i];
    s = s + b.v;
    if (i == trigger) { b.v = 0.5; }
  }
  return s;
}
var r = 0;
for (var k = 0; k < 10; k++) { r = sweep(); }
trigger = 30;
var r2 = sweep();
trigger = 0 - 1;
var r3 = sweep();
print(r); print(r2); print(r3);
|}
    "1770\n1770\n1740.5\n"

let test_elements_kind_transition_retires_profiles () =
  (* gr.nodes profiled as Array[smi]; the in-place kind transition must not
     leave stale speculation behind *)
  check_all_modes "kind transition under speculation"
    {|
function G() { this.nodes = array_new(0); }
var g = new G();
push(g.nodes, 1);
function f() { var ns = g.nodes; return ns[0]; }
var r = 0;
for (var k = 0; k < 20; k++) { r = f(); }
push(g.nodes, {tag: 7});
var o = g.nodes[1];
print(r); print(o.tag); print(f());
|}
    "1\n7\n1\n"

let test_retire_path_cc_exception_flow () =
  (* a hot optimized function speculates on g.nodes being one Array class;
     an in-place elements-kind transition retires that class mid-run. The
     engine must route this through the CC-exception deopt flow (visible in
     the counters and the oracle's retired sentinel), not just stay
     correct by accident. *)
  let src =
    {|
function G() { this.nodes = array_new(0); }
var g = new G();
for (var i = 0; i < 8; i++) { push(g.nodes, i); }
function total() {
  var ns = g.nodes;
  var s = 0;
  for (var i = 0; i < 8; i++) { s = s + ns[i]; }
  return s;
}
var r = 0;
for (var k = 0; k < 30; k++) { r = total(); }
push(g.nodes, {tag: 5});
print(r); print(total());
|}
  in
  check_all_modes "speculation on mid-run-retired class" src "28\n28\n";
  let t = E.of_source src in
  E.set_measuring t true;
  ignore (E.run_main t);
  Alcotest.(check bool) "retire went through the CC-exception deopt flow"
    true
    (t.E.counters.Tce_machine.Counters.cc_exception_deopts > 0);
  Alcotest.(check bool) "oracle carries the retired-class sentinel" true
    (Tce_core.Oracle.fold
       (fun acc ~classid:_ ~line:_ ~pos:_ ~info ->
         acc || List.mem (-1) info.Tce_core.Oracle.classes)
       false t.E.oracle)

let test_boolean_property_speculation () =
  (* regression: a property profiled as class Boolean holds BOTH oddballs;
     speculated code must still branch on the value, not assume truthy *)
  check_all_modes "boolean-valued property in condition"
    {|
function E(ok) { this.ok = ok; }
var es = array_new(0);
for (var i = 0; i < 60; i++) { push(es, new E(i % 3 != 0)); }
function count() {
  var c = 0;
  for (var i = 0; i < 60; i++) { if (es[i].ok) { c++; } }
  return c;
}
var r = 0;
for (var k = 0; k < 12; k++) { r = count(); }
print(r);
|}
    "40
";
  check_all_modes "null-valued property in condition"
    {|
function E(p) { this.p = p; }
var es = array_new(0);
for (var i = 0; i < 60; i++) { push(es, new E(null)); }
function count() {
  var c = 0;
  for (var i = 0; i < 60; i++) { if (es[i].p) { c++; } }
  return c;
}
var r = 1;
for (var k = 0; k < 12; k++) { r = count(); }
print(r);
|}
    "0
"

let test_global_semantics () =
  check_all_modes "globals shared across functions"
    {|
var counter = 0;
function tick() { counter = counter + 1; return counter; }
tick(); tick();
print(counter);
function reset() { counter = 0; }
reset();
print(counter);
|}
    "2\n0\n"

let test_runtime_errors_surface () =
  let t = E.of_source "var x = null; print(x.field + 1);" in
  Alcotest.(check bool) "null property arithmetic traps" true
    (try ignore (E.run_main t); false
     with E.Engine_error _ | Tce_engine.Runtime.Guest_error _ -> true);
  let t2 = E.of_source "print(1 + {a: 2});" in
  Alcotest.(check bool) "object arithmetic traps" true
    (try ignore (E.run_main t2); false
     with E.Engine_error _ | Tce_engine.Runtime.Guest_error _ -> true)

let test_guest_stack_overflow () =
  let t = E.of_source "function f(n) { return f(n + 1); } print(f(0));" in
  Alcotest.(check bool) "deep recursion trapped" true
    (try ignore (E.run_main t); false with E.Engine_error _ -> true)

let test_assert_eq_builtin () =
  check_all_modes "assert_eq passes" "assert_eq(2 + 2, 4); print(1);" "1\n";
  let t = E.of_source "assert_eq(1, 2);" in
  Alcotest.(check bool) "assert_eq fails" true
    (try ignore (E.run_main t); false
     with Tce_engine.Runtime.Guest_error _ -> true)

let test_determinism_with_random () =
  let src = "var s = 0.0; for (var i = 0; i < 10; i++) { s = s + random(); } print(s);" in
  Alcotest.(check string) "seeded PRNG is reproducible" (run_output src)
    (run_output src)

(* --- random-program differential property --- *)

let prop_random_programs_tier_equivalent =
  QCheck.Test.make ~name:"random programs: interpreter = JIT = JIT+mechanism"
    ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Tce_support.Prng.create seed in
      let src = Tce_workloads.Synthetic.random_program rng in
      let run config =
        let t = E.of_source ~config src in
        ignore (E.run_main t);
        let v = ref t.E.heap.Tce_vm.Heap.null_v in
        for _ = 1 to 12 do
          v := E.call_by_name t "bench" [||]
        done;
        Tce_vm.Heap.to_display_string t.E.heap !v
      in
      let a = run interp_config in
      let b = run E.default_config in
      let c = run { E.default_config with E.mechanism = false } in
      let d =
        run { E.default_config with E.mechanism = false; checked_load = true }
      in
      if a = b && b = c && c = d then true
      else
        QCheck.Test.fail_reportf
          "tier mismatch: interp=%s jit=%s nomech=%s checked-load=%s\n%s" a b c d
          src)

let () =
  Alcotest.run "engine"
    [
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "bitwise" `Quick test_bitwise;
          Alcotest.test_case "comparisons/logic" `Quick test_comparisons_and_logic;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "objects" `Quick test_objects;
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "math builtins" `Quick test_math_builtins;
          Alcotest.test_case "boolean/null speculation" `Quick
            test_boolean_property_speculation;
          Alcotest.test_case "globals" `Quick test_global_semantics;
          Alcotest.test_case "runtime errors" `Quick test_runtime_errors_surface;
          Alcotest.test_case "stack overflow" `Quick test_guest_stack_overflow;
          Alcotest.test_case "assert_eq" `Quick test_assert_eq_builtin;
          Alcotest.test_case "seeded random" `Quick test_determinism_with_random;
          Alcotest.test_case "smi boundaries" `Quick test_smi_boundaries;
          Alcotest.test_case "division corners" `Quick test_division_corner_cases;
          Alcotest.test_case "ushr big values" `Quick test_ushr_big_values;
          Alcotest.test_case "shift masking" `Quick test_shift_masking;
          Alcotest.test_case "string builtins" `Quick test_string_builtins_full;
          Alcotest.test_case "math builtins (full)" `Quick test_math_builtins_full;
          Alcotest.test_case "deep property chains" `Quick test_deep_property_chains;
          Alcotest.test_case "object identity" `Quick test_object_identity;
          Alcotest.test_case "arrays of arrays" `Quick test_arrays_of_arrays;
          Alcotest.test_case "compare kinds" `Quick test_comparison_chains_hot;
          Alcotest.test_case "wide frames" `Quick test_many_locals_and_args;
          Alcotest.test_case "print formats" `Quick test_print_formats;
        ] );
      ( "tiers",
        [
          Alcotest.test_case "tier-up" `Quick test_hot_function_tiers_up;
          Alcotest.test_case "deopt on type change" `Quick test_deopt_on_type_change;
          Alcotest.test_case "misspeculation exception" `Quick
            test_misspeculation_exception;
          Alcotest.test_case "OSR out of invalidated frame" `Quick
            test_osr_out_of_invalidated_frame;
          Alcotest.test_case "kind-transition retirement" `Quick
            test_elements_kind_transition_retires_profiles;
          Alcotest.test_case "retire-path CC-exception flow" `Quick
            test_retire_path_cc_exception_flow;
          Alcotest.test_case "polymorphic sites" `Quick test_polymorphic_sites;
          Alcotest.test_case "megamorphic sites" `Quick test_megamorphic_sites;
          Alcotest.test_case "transitioning stores" `Quick
            test_transitioning_store_in_hot_code;
          Alcotest.test_case "backedge hotness" `Quick test_while_backedge_hotness;
          Alcotest.test_case "branchy constructors" `Quick
            test_ctor_with_conditional_shapes;
          Alcotest.test_case "growth in hot loop" `Quick
            test_elements_growth_in_hot_loop;
          QCheck_alcotest.to_alcotest prop_random_programs_tier_equivalent;
        ] );
    ]
