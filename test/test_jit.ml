(* Tests for the JIT layer: bytecode compiler, feedback, inliner, optimizer. *)

open Tce_jit

let compile src = Bc_compile.compile_source src

(* --- bytecode compiler --- *)

let test_bc_shape () =
  let p = compile "function add(a, b) { return a + b; } print(add(1, 2));" in
  Alcotest.(check int) "two functions (add + %main)" 2 (Array.length p.Bytecode.funcs);
  let add = Option.get (Bytecode.find_func p "add") in
  Alcotest.(check int) "params" 2 add.Bytecode.n_params;
  (match add.Bytecode.code with
  | [| Bytecode.BinOp (Tce_minijs.Ast.Add, _, 1, 2, _); Bytecode.Return _ |] -> ()
  | _ -> Alcotest.failf "unexpected code: %a" (fun ppf () -> Bytecode.pp_func ppf add) ())

let test_bc_globals () =
  let p = compile "var g = 1; function f() { g = g + 1; return g; } print(f());" in
  Alcotest.(check (array string)) "globals" [| "g" |] p.Bytecode.globals;
  let f = Option.get (Bytecode.find_func p "f") in
  let has_get = Array.exists (function Bytecode.GetGlobal _ -> true | _ -> false) f.Bytecode.code in
  let has_set = Array.exists (function Bytecode.SetGlobal _ -> true | _ -> false) f.Bytecode.code in
  Alcotest.(check bool) "reads global" true has_get;
  Alcotest.(check bool) "writes global" true has_set

let test_bc_ctor_reserve () =
  let p = compile "function Pt(x, y) { this.x = x; this.y = y; }\nvar p = new Pt(1, 2);" in
  let pt = Option.get (Bytecode.find_func p "Pt") in
  Alcotest.(check bool) "is ctor" true pt.Bytecode.is_ctor;
  Alcotest.(check int) "reserve = 2 props + slack" 4 pt.Bytecode.reserve_props;
  (* ctors implicitly return this (register 0) *)
  match pt.Bytecode.code.(Array.length pt.Bytecode.code - 1) with
  | Bytecode.Return 0 -> ()
  | _ -> Alcotest.fail "ctor must return this"

let test_bc_loops_and_jumps () =
  let p = compile "var s = 0; for (var i = 0; i < 10; i++) { if (i == 3) continue; if (i == 7) break; s = s + i; }" in
  let main = p.Bytecode.funcs.(p.Bytecode.main) in
  (* every jump target must be a valid pc *)
  let n = Array.length main.Bytecode.code in
  Array.iter
    (function
      | Bytecode.Jump l | JumpIfFalse (_, l) | JumpIfTrue (_, l) ->
        Alcotest.(check bool) "target in range" true (l >= 0 && l <= n)
      | _ -> ())
    main.Bytecode.code

let test_bc_errors () =
  let fails src =
    try ignore (compile src); false with Bc_compile.Error _ -> true
  in
  Alcotest.(check bool) "unbound var" true (fails "x = 1;");
  Alcotest.(check bool) "unknown function" true (fails "nosuch(1);");
  Alcotest.(check bool) "builtin arity" true (fails "print(1, 2);");
  Alcotest.(check bool) "break outside loop" true (fails "break;");
  Alcotest.(check bool) "unknown ctor" true (fails "var x = new Nope();")

let test_bc_logical_ops_control_flow () =
  let p = compile "var a = 1; var b = 2; var c = a && b; var d = a || b;" in
  let main = p.Bytecode.funcs.(p.Bytecode.main) in
  (* && and || must compile to jumps, not BinOps *)
  Array.iter
    (function
      | Bytecode.BinOp ((Tce_minijs.Ast.LAnd | Tce_minijs.Ast.LOr), _, _, _, _) ->
        Alcotest.fail "logical op leaked into a BinOp"
      | _ -> ())
    main.Bytecode.code

(* --- feedback --- *)

let test_feedback_progression () =
  let fb = [| Feedback.S_prop Feedback.Ic_uninit |] in
  let sh c s = { Feedback.classid = c; slot = s; transition_to = None } in
  ignore (Feedback.record_prop fb 0 (sh 1 1));
  (match fb.(0) with
  | Feedback.S_prop (Feedback.Ic_mono _) -> ()
  | _ -> Alcotest.fail "mono");
  ignore (Feedback.record_prop fb 0 (sh 1 1));
  (match fb.(0) with
  | Feedback.S_prop (Feedback.Ic_mono _) -> ()
  | _ -> Alcotest.fail "stays mono");
  ignore (Feedback.record_prop fb 0 (sh 2 1));
  (match fb.(0) with
  | Feedback.S_prop (Feedback.Ic_poly l) ->
    Alcotest.(check int) "two shapes" 2 (List.length l)
  | _ -> Alcotest.fail "poly");
  ignore (Feedback.record_prop fb 0 (sh 3 1));
  ignore (Feedback.record_prop fb 0 (sh 4 1));
  ignore (Feedback.record_prop fb 0 (sh 5 1));
  match fb.(0) with
  | Feedback.S_prop Feedback.Ic_mega -> ()
  | _ -> Alcotest.fail "mega after more than 4 shapes"

let test_feedback_binop_join () =
  let open Feedback in
  Alcotest.(check bool) "smi+smi" true (join_binop Bf_smi Bf_smi = Bf_smi);
  Alcotest.(check bool) "smi+number" true (join_binop Bf_smi Bf_number = Bf_number);
  Alcotest.(check bool) "string+smi" true (join_binop Bf_string Bf_smi = Bf_generic);
  Alcotest.(check bool) "ref+ref" true (join_binop Bf_ref Bf_ref = Bf_ref);
  Alcotest.(check bool) "none is identity" true (join_binop Bf_none Bf_string = Bf_string)

(* --- inliner --- *)

let test_inline_simple_call () =
  let p = compile "function sq(x) { return x * x; } function hot(n) { return sq(n) + sq(n + 1); } print(hot(3));" in
  let hot = Option.get (Bytecode.find_func p "hot") in
  match Inline.expand p hot with
  | Some shadow ->
    Alcotest.(check bool) "no Call left" true
      (not
         (Array.exists
            (function Bytecode.Call _ -> true | _ -> false)
            shadow.Bytecode.code));
    Alcotest.(check bool) "more registers" true
      (shadow.Bytecode.n_regs > hot.Bytecode.n_regs);
    Alcotest.(check bool) "more feedback slots" true
      (Array.length shadow.Bytecode.fb > Array.length hot.Bytecode.fb)
  | None -> Alcotest.fail "expected inlining"

let test_inline_skips_recursive () =
  let p = compile "function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } print(fib(5));" in
  let fib = Option.get (Bytecode.find_func p "fib") in
  Alcotest.(check bool) "self-recursive not inlined" true (Inline.expand p fib = None)

let test_inline_ctor () =
  let p = compile "function Pt(x) { this.x = x; } function mk(n) { var t = 0; for (var i = 0; i < n; i++) { var o = new Pt(i); t = t + o.x; } return t; } print(mk(3));" in
  let pt = Option.get (Bytecode.find_func p "Pt") in
  (* base_class must exist for ctor inlining; simulate runtime creation *)
  let heap = Tce_vm.Heap.create () in
  pt.Bytecode.base_class <-
    Some
      (Tce_vm.Hidden_class.Registry.fresh heap.Tce_vm.Heap.reg
         ~kind:Tce_vm.Hidden_class.K_object ~name:"Pt" ~prop_names:[||]);
  let mk = Option.get (Bytecode.find_func p "mk") in
  match Inline.expand p mk with
  | Some shadow ->
    Alcotest.(check bool) "AllocCtor emitted" true
      (Array.exists
         (function Bytecode.AllocCtor (_, _) -> true | _ -> false)
         shadow.Bytecode.code);
    Alcotest.(check bool) "New gone" true
      (not (Array.exists (function Bytecode.New _ -> true | _ -> false) shadow.Bytecode.code))
  | None -> Alcotest.fail "expected ctor inlining"

(* --- optimizer --- *)

(* Build a tiny engine to produce feedback + profiles, then inspect code. *)
module E = Tce_engine.Engine

let optimized_code ?(mechanism = true) ~fname src =
  let config = { E.default_config with E.mechanism } in
  let t = E.of_source ~config src in
  E.set_measuring t false;
  ignore (E.run_main t);
  for _ = 1 to 9 do
    ignore (E.call_by_name t "bench" [||])
  done;
  let fn = Option.get (Bytecode.find_func t.E.prog fname) in
  match fn.Bytecode.opt with
  | Some code -> code
  | None -> Alcotest.failf "%s was not optimized" fname

let count_cat (code : Lir.func) cat =
  Array.fold_left
    (fun acc (i : Lir.inst) -> if i.Lir.cat = cat then acc + 1 else acc)
    0 code.Lir.code

let mono_src =
  {|
function Box(v) { this.v = v; }
function get(b) { return b.v; }
var boxes = array_new(0);
for (var i = 0; i < 50; i++) { push(boxes, new Box(i)); }
function bench() {
  var s = 0;
  for (var i = 0; i < 50; i++) { s = (s + get(boxes[i])) & 65535; }
  return s;
}
|}

let test_opt_removes_checks_with_mechanism () =
  let off = optimized_code ~mechanism:false ~fname:"bench" mono_src in
  let on = optimized_code ~mechanism:true ~fname:"bench" mono_src in
  let c_off = count_cat off Categories.C_check in
  let c_on = count_cat on Categories.C_check in
  Alcotest.(check bool)
    (Printf.sprintf "fewer static checks with the mechanism (%d < %d)" c_on c_off)
    true (c_on < c_off);
  Alcotest.(check bool) "speculation dependencies registered" true
    (on.Lir.spec_deps <> []);
  Alcotest.(check bool) "no speculation without the mechanism" true
    (off.Lir.spec_deps = [])

let test_opt_special_stores_emitted () =
  let src =
    {|
function K(v) { this.v = v; }
var os = array_new(0);
var gsrc = 7;
for (var i = 0; i < 40; i++) { push(os, new K(i)); }
function bench() {
  var n = os.length;
  for (var i = 0; i < n; i++) { os[i].v = gsrc; }
  gsrc = 1;
  return n;
}
|}
  in
  let on = optimized_code ~mechanism:true ~fname:"bench" src in
  let has op = Array.exists (fun (i : Lir.inst) -> op i.Lir.op) on.Lir.code in
  Alcotest.(check bool) "movClassID emitted" true
    (has (function Lir.MovClassID _ -> true | _ -> false));
  Alcotest.(check bool) "movStoreClassCache emitted" true
    (has (function Lir.StoreClassCache _ -> true | _ -> false));
  let off = optimized_code ~mechanism:false ~fname:"bench" src in
  let has_off op = Array.exists (fun (i : Lir.inst) -> op i.Lir.op) off.Lir.code in
  Alcotest.(check bool) "no special stores without the mechanism" false
    (has_off (function Lir.StoreClassCache _ -> true | _ -> false))

let test_opt_provably_safe_stores_are_plain () =
  (* storing a value the compiler knows is SMI into an SMI-profiled slot
     cannot break the profile: no special store *)
  let src =
    {|
function K(v) { this.v = v; }
var os = array_new(0);
for (var i = 0; i < 40; i++) { push(os, new K(i)); }
function bench() {
  var n = os.length;
  for (var i = 0; i < n; i++) { os[i].v = i * 2; }
  return n;
}
|}
  in
  let on = optimized_code ~mechanism:true ~fname:"bench" src in
  Alcotest.(check bool) "no special store needed" true
    (not
       (Array.exists
          (fun (i : Lir.inst) ->
            match i.Lir.op with Lir.StoreClassCache _ -> true | _ -> false)
          on.Lir.code))

let test_opt_deopt_metadata () =
  let code = optimized_code ~mechanism:true ~fname:"bench" mono_src in
  (* every deopt id referenced by the code exists in the table *)
  Array.iter
    (fun (i : Lir.inst) ->
      match i.Lir.op with
      | Lir.Deopt id ->
        Alcotest.(check bool) "deopt id valid" true
          (id >= 0 && id < Array.length code.Lir.deopts)
      | _ -> ())
    code.Lir.code;
  (* branch targets are in range *)
  let n = Array.length code.Lir.code in
  Array.iter
    (fun (i : Lir.inst) ->
      match i.Lir.op with
      | Lir.Branch (_, _, _, l) | Lir.FBranch (_, _, _, l) | Lir.Jmp l
      | Lir.AluOv (_, _, _, _, l) ->
        Alcotest.(check bool) "target in range" true (l >= 0 && l < n)
      | _ -> ())
    code.Lir.code

let test_opt_strength_reduction () =
  let src =
    {|
var arr = array_new(64);
for (var i = 0; i < 64; i++) { arr[i] = i * 7; }
function bench() {
  var acc = 0;
  for (var i = 0; i < 64; i++) { acc = (acc + arr[i]) % 1048576; }
  return acc;
}
|}
  in
  let code = optimized_code ~mechanism:true ~fname:"bench" src in
  (* power-of-two modulus must not use the 20-cycle integer remainder *)
  Alcotest.(check bool) "no Rem for %% 2^k" true
    (not
       (Array.exists
          (fun (i : Lir.inst) ->
            match i.Lir.op with
            | Lir.Alu (Lir.Rem, _, _, _) | Lir.Alu32 (Lir.Rem, _, _, _) -> true
            | _ -> false)
          code.Lir.code))

let test_opt_unboxed_float_locals () =
  let src =
    {|
function bench() {
  var sum = 0.0;
  for (var i = 0; i < 100; i++) { sum = sum + i * 0.5; }
  return sum;
}
|}
  in
  let code = optimized_code ~mechanism:true ~fname:"bench" src in
  (* the accumulator must live unboxed: no Rt_box_double in the loop *)
  let boxes =
    Array.fold_left
      (fun acc (i : Lir.inst) ->
        match i.Lir.op with
        | Lir.CallRt (Lir.Rt_box_double, _, _, _, _) -> acc + 1
        | _ -> acc)
      0 code.Lir.code
  in
  (* the single permitted box is the tagged return of the accumulator *)
  Alcotest.(check bool) "no boxing in the float loop" true (boxes <= 1)

let () =
  Alcotest.run "jit"
    [
      ( "bytecode",
        [
          Alcotest.test_case "shape" `Quick test_bc_shape;
          Alcotest.test_case "globals" `Quick test_bc_globals;
          Alcotest.test_case "ctor reserve" `Quick test_bc_ctor_reserve;
          Alcotest.test_case "loops/jumps" `Quick test_bc_loops_and_jumps;
          Alcotest.test_case "errors" `Quick test_bc_errors;
          Alcotest.test_case "logical ops" `Quick test_bc_logical_ops_control_flow;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "IC progression" `Quick test_feedback_progression;
          Alcotest.test_case "binop join" `Quick test_feedback_binop_join;
        ] );
      ( "inliner",
        [
          Alcotest.test_case "simple call" `Quick test_inline_simple_call;
          Alcotest.test_case "skips recursion" `Quick test_inline_skips_recursive;
          Alcotest.test_case "constructors" `Quick test_inline_ctor;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "check elimination" `Quick
            test_opt_removes_checks_with_mechanism;
          Alcotest.test_case "special stores" `Quick test_opt_special_stores_emitted;
          Alcotest.test_case "provably-safe stores" `Quick
            test_opt_provably_safe_stores_are_plain;
          Alcotest.test_case "deopt metadata" `Quick test_opt_deopt_metadata;
          Alcotest.test_case "strength reduction" `Quick test_opt_strength_reduction;
          Alcotest.test_case "unboxed float locals" `Quick
            test_opt_unboxed_float_locals;
        ] );
    ]
